"""Tests for the evaluation harness (cohorts, sweeps, aggregation)."""

import math

import pytest

from repro.core import (
    AggregateMetrics,
    CONREP,
    UNCONREP,
    evaluate_placements,
    make_policy,
    placement_sequences,
    select_cohort,
    sweep_replication_degree,
    sweep_session_length,
    sweep_user_degree,
)
from repro.core.metrics import UserMetrics
from repro.datasets import synthetic_facebook
from repro.onlinetime import FixedLengthModel, SporadicModel, compute_schedules

import functools


@functools.lru_cache(maxsize=1)
def _dataset():
    return synthetic_facebook(700, seed=11)


def _user_metrics(**overrides):
    base = dict(
        user=1,
        allowed_degree=2,
        replicas=(2,),
        availability=0.5,
        max_achievable_availability=0.8,
        aod_time=0.6,
        aod_activity=0.7,
        expected_activity_fraction=0.9,
        aod_activity_expected=0.7,
        aod_activity_unexpected=0.7,
        delay_hours_actual=10.0,
        delay_hours_observed=2.0,
    )
    base.update(overrides)
    return UserMetrics(**base)


class TestAggregateMetrics:
    def test_means(self):
        agg = AggregateMetrics.from_users(
            [
                _user_metrics(availability=0.2, delay_hours_actual=10.0),
                _user_metrics(availability=0.4, delay_hours_actual=20.0),
            ]
        )
        assert agg.num_users == 2
        assert agg.availability == pytest.approx(0.3)
        assert agg.delay_hours_actual == pytest.approx(15.0)

    def test_infinite_delays_counted_not_averaged(self):
        agg = AggregateMetrics.from_users(
            [
                _user_metrics(delay_hours_actual=10.0),
                _user_metrics(delay_hours_actual=math.inf),
            ]
        )
        assert agg.delay_hours_actual == pytest.approx(10.0)
        assert agg.num_infinite_delay == 1

    def test_all_infinite_gives_zero_mean(self):
        agg = AggregateMetrics.from_users(
            [_user_metrics(delay_hours_actual=math.inf)]
        )
        assert agg.delay_hours_actual == 0.0
        assert agg.num_infinite_delay == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AggregateMetrics.from_users([])
        with pytest.raises(ValueError):
            AggregateMetrics.mean([])

    def test_mean_of_aggregates(self):
        a = AggregateMetrics.from_users([_user_metrics(availability=0.2)])
        b = AggregateMetrics.from_users([_user_metrics(availability=0.6)])
        merged = AggregateMetrics.mean([a, b])
        assert merged.availability == pytest.approx(0.4)

    def test_mean_skips_repeats_with_no_finite_delays(self):
        # A repeat in which every user's delay is infinite reports 0.0
        # over zero finite users; averaging it in with equal weight would
        # bias the cross-repeat delay mean low.  It must carry no weight.
        finite = AggregateMetrics.from_users(
            [
                _user_metrics(delay_hours_actual=12.0, delay_hours_observed=4.0),
                _user_metrics(delay_hours_actual=18.0, delay_hours_observed=6.0),
            ]
        )
        empty = AggregateMetrics.from_users(
            [
                _user_metrics(
                    delay_hours_actual=math.inf, delay_hours_observed=math.inf
                ),
                _user_metrics(
                    delay_hours_actual=math.inf, delay_hours_observed=math.inf
                ),
            ]
        )
        merged = AggregateMetrics.mean([finite, empty])
        assert merged.delay_hours_actual == pytest.approx(15.0)
        assert merged.delay_hours_observed == pytest.approx(5.0)
        assert merged.num_infinite_delay == 1  # rounded mean of (0, 2)
        assert merged.num_infinite_delay_observed == 1

    def test_mean_weights_by_finite_sample_counts(self):
        # 1 finite user at 10 h in one repeat, 2 finite users at 40 h in
        # the other: the pooled finite mean is (10 + 40 + 40) / 3 = 30,
        # not the equal-weight (10 + 40) / 2 = 25.
        one_finite = AggregateMetrics.from_users(
            [
                _user_metrics(delay_hours_actual=10.0),
                _user_metrics(delay_hours_actual=math.inf),
            ]
        )
        two_finite = AggregateMetrics.from_users(
            [
                _user_metrics(delay_hours_actual=40.0),
                _user_metrics(delay_hours_actual=40.0),
            ]
        )
        merged = AggregateMetrics.mean([one_finite, two_finite])
        assert merged.delay_hours_actual == pytest.approx(30.0)

    def test_mean_all_empty_repeats_is_zero(self):
        empty = AggregateMetrics.from_users(
            [_user_metrics(delay_hours_actual=math.inf)]
        )
        merged = AggregateMetrics.mean([empty, empty])
        assert merged.delay_hours_actual == 0.0
        assert merged.num_infinite_delay == 1

    def test_equal_weights_match_plain_mean(self):
        # All repeats fully finite over equal cohorts: the weighted mean
        # must agree with the naive equal-weight mean.
        a = AggregateMetrics.from_users(
            [_user_metrics(delay_hours_actual=10.0)] * 2
        )
        b = AggregateMetrics.from_users(
            [_user_metrics(delay_hours_actual=30.0)] * 2
        )
        merged = AggregateMetrics.mean([a, b])
        assert merged.delay_hours_actual == pytest.approx(20.0)

    def test_from_users_tracks_observed_infinities(self):
        agg = AggregateMetrics.from_users(
            [
                _user_metrics(delay_hours_observed=math.inf),
                _user_metrics(delay_hours_observed=2.0),
            ]
        )
        assert agg.num_infinite_delay_observed == 1
        assert agg.delay_hours_observed == pytest.approx(2.0)


class TestMergeDegenerates:
    """merge() on the edge shapes the sharded rollups actually produce."""

    def test_merge_empty_rejected(self):
        with pytest.raises(ValueError):
            AggregateMetrics.merge([])

    def test_merge_zero_total_users_rejected(self):
        empty_part = AggregateMetrics(
            num_users=0,
            availability=0.0,
            max_achievable_availability=0.0,
            aod_time=0.0,
            aod_activity=0.0,
            expected_activity_fraction=0.0,
            delay_hours_actual=0.0,
            delay_hours_observed=0.0,
            mean_replicas_used=0.0,
            num_infinite_delay=0,
        )
        with pytest.raises(ValueError):
            AggregateMetrics.merge([empty_part])

    def test_merge_single_part_is_identity(self):
        part = AggregateMetrics.from_users(
            [_user_metrics(availability=0.37, delay_hours_actual=4.25)]
        )
        assert AggregateMetrics.merge([part]) == part

    def test_merge_of_singletons_equals_whole_cohort(self):
        # One part per user must roll up to exactly the single-pass
        # aggregate — bit for bit, including the finite-delay means.
        metrics = [
            _user_metrics(
                user=i,
                availability=0.1 + 0.07 * i,
                delay_hours_actual=(math.inf if i == 2 else 3.0 + i),
                delay_hours_observed=(math.inf if i == 0 else 0.5 * i),
            )
            for i in range(5)
        ]
        merged = AggregateMetrics.merge(
            [AggregateMetrics.from_users([m]) for m in metrics]
        )
        assert merged == AggregateMetrics.from_users(metrics)

    def test_merge_split_halves_match_whole_when_aligned(self):
        # Two equal-size halves whose per-half means are exact (power of
        # two counts, representable values) merge to the whole-cohort
        # aggregate.
        metrics = [
            _user_metrics(availability=0.25 * (i + 1), delay_hours_actual=float(i + 1))
            for i in range(4)
        ]
        whole = AggregateMetrics.from_users(metrics)
        halves = [
            AggregateMetrics.from_users(metrics[:2]),
            AggregateMetrics.from_users(metrics[2:]),
        ]
        assert AggregateMetrics.merge(halves) == whole

    def test_merge_ignores_nan_delay_in_zero_weight_part(self):
        # A part in which every user's delay was infinite contributes
        # zero weight to the finite-delay mean; a NaN placeholder in its
        # delay field must not poison the merged mean (NaN * 0 == NaN).
        all_infinite = AggregateMetrics(
            num_users=2,
            availability=0.5,
            max_achievable_availability=0.5,
            aod_time=0.5,
            aod_activity=0.5,
            expected_activity_fraction=0.5,
            delay_hours_actual=math.nan,
            delay_hours_observed=math.nan,
            mean_replicas_used=1.0,
            num_infinite_delay=2,
            num_infinite_delay_observed=2,
        )
        finite = AggregateMetrics.from_users(
            [_user_metrics(delay_hours_actual=6.0, delay_hours_observed=2.0)]
        )
        merged = AggregateMetrics.merge([all_infinite, finite])
        assert merged.delay_hours_actual == 6.0
        assert merged.delay_hours_observed == 2.0
        assert merged.num_infinite_delay == 2

    def test_merge_all_parts_infinite_gives_zero_mean(self):
        parts = [
            AggregateMetrics.from_users(
                [_user_metrics(delay_hours_actual=math.inf)]
            )
            for _ in range(3)
        ]
        merged = AggregateMetrics.merge(parts)
        assert merged.delay_hours_actual == 0.0
        assert merged.num_infinite_delay == 3

    def test_mean_ignores_nan_delay_in_zero_weight_repeat(self):
        # Same regression for the cross-repeat averaging path.
        all_infinite = AggregateMetrics(
            num_users=1,
            availability=0.5,
            max_achievable_availability=0.5,
            aod_time=0.5,
            aod_activity=0.5,
            expected_activity_fraction=0.5,
            delay_hours_actual=math.nan,
            delay_hours_observed=math.nan,
            mean_replicas_used=1.0,
            num_infinite_delay=1,
            num_infinite_delay_observed=1,
        )
        finite = AggregateMetrics.from_users(
            [_user_metrics(delay_hours_actual=8.0, delay_hours_observed=4.0)]
        )
        averaged = AggregateMetrics.mean([all_infinite, finite])
        assert averaged.delay_hours_actual == 8.0
        assert averaged.delay_hours_observed == 4.0


class TestSelectCohort:
    def test_exact_degree(self):
        ds = _dataset()
        users = select_cohort(ds, 10)
        assert users
        assert all(ds.degree(u) == 10 for u in users)

    def test_subsample_reproducible(self):
        ds = _dataset()
        a = select_cohort(ds, 1, max_users=5, seed=3)
        b = select_cohort(ds, 1, max_users=5, seed=3)
        assert a == b
        assert len(a) == 5

    def test_no_users_returns_empty(self):
        ds = _dataset()
        assert select_cohort(ds, 100000) == []


class TestSweepReplicationDegree:
    def test_shapes_and_monotonicity(self):
        ds = _dataset()
        users = select_cohort(ds, 10, max_users=12)
        policies = [make_policy("maxav"), make_policy("random")]
        res = sweep_replication_degree(
            ds,
            SporadicModel(),
            policies,
            mode=CONREP,
            degrees=list(range(6)),
            users=users,
            seed=0,
        )
        assert set(res) == {"maxav", "random"}
        for series in res.values():
            assert len(series) == 6
            avail = [a.availability for a in series]
            # Availability is monotone in allowed degree (prefix property).
            assert all(b >= a - 1e-12 for a, b in zip(avail, avail[1:]))
        # MaxAv dominates Random at every degree.
        for mx, rnd in zip(res["maxav"], res["random"]):
            assert mx.availability >= rnd.availability - 1e-9

    def test_unconrep_geq_conrep_availability(self):
        ds = _dataset()
        users = select_cohort(ds, 10, max_users=12)
        policy = [make_policy("maxav")]
        model = FixedLengthModel(2)
        con = sweep_replication_degree(
            ds, model, policy, mode=CONREP, degrees=[4], users=users
        )
        uncon = sweep_replication_degree(
            ds, model, policy, mode=UNCONREP, degrees=[4], users=users
        )
        assert (
            uncon["maxav"][0].availability
            >= con["maxav"][0].availability - 1e-9
        )

    def test_repeats_average(self):
        ds = _dataset()
        users = select_cohort(ds, 10, max_users=6)
        res = sweep_replication_degree(
            ds,
            SporadicModel(),
            [make_policy("random")],
            degrees=[3],
            users=users,
            seed=0,
            repeats=3,
        )
        assert res["random"][0].num_users == len(users)

    def test_empty_cohort_rejected(self):
        ds = _dataset()
        with pytest.raises(ValueError):
            sweep_replication_degree(
                ds,
                SporadicModel(),
                [make_policy("maxav")],
                degrees=[1],
                users=[],
            )


class TestPlacementSequences:
    def test_prefix_evaluation_matches_direct(self):
        ds = _dataset()
        users = select_cohort(ds, 10, max_users=5)
        schedules = compute_schedules(ds, SporadicModel(), seed=1)
        policy = make_policy("maxav")
        sequences = placement_sequences(
            ds, schedules, users, policy, mode=CONREP, max_degree=8, seed=1
        )
        agg3 = evaluate_placements(ds, schedules, sequences, 3, mode=CONREP)
        assert 0 <= agg3.availability <= 1
        assert agg3.mean_replicas_used <= 3


class TestSweepSessionLength:
    def test_longer_sessions_more_availability(self):
        ds = _dataset()
        users = select_cohort(ds, 10, max_users=10)
        res = sweep_session_length(
            ds,
            [600, 3600, 4 * 3600],
            [make_policy("maxav")],
            k=3,
            users=users,
            seed=0,
        )
        avail = [a.availability for a in res["maxav"]]
        assert avail == sorted(avail)

    def test_longer_sessions_less_delay(self):
        ds = _dataset()
        users = select_cohort(ds, 10, max_users=10)
        res = sweep_session_length(
            ds,
            [600, 6 * 3600],
            [make_policy("maxav")],
            k=3,
            users=users,
            seed=0,
        )
        delays = [a.delay_hours_actual for a in res["maxav"]]
        assert delays[1] < delays[0]


class TestSweepUserDegree:
    def test_availability_grows_with_degree(self):
        ds = _dataset()
        res = sweep_user_degree(
            ds,
            SporadicModel(),
            [make_policy("maxav")],
            user_degrees=[1, 5, 10],
            max_users_per_degree=15,
            seed=0,
        )
        series = [a for a in res["maxav"] if a is not None]
        assert len(series) == 3
        avail = [a.availability for a in series]
        assert avail[0] < avail[-1]

    def test_missing_degree_yields_none(self):
        ds = _dataset()
        res = sweep_user_degree(
            ds,
            SporadicModel(),
            [make_policy("maxav")],
            user_degrees=[100000],
        )
        assert res["maxav"] == [None]
