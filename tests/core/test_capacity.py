"""Tests for capacity-constrained network-wide placement."""

import functools

import pytest

from repro.core import (
    CONREP,
    make_policy,
    place_network,
    placement_sequences,
)
from repro.core.fairness import hosting_load
from repro.datasets import synthetic_facebook
from repro.onlinetime import SporadicModel, compute_schedules


@functools.lru_cache(maxsize=1)
def _setup():
    ds = synthetic_facebook(600, seed=51)
    schedules = compute_schedules(ds, SporadicModel(), seed=0)
    return ds, schedules


class TestPlaceNetwork:
    def test_unlimited_matches_placement_sequences(self):
        ds, schedules = _setup()
        users = sorted(ds.graph.users())[:50]
        policy = make_policy("maxav")
        a = place_network(
            ds, schedules, policy, k=3, users=users, seed=4
        )
        b = placement_sequences(
            ds, schedules, users, policy, mode=CONREP, max_degree=3, seed=4
        )
        assert a == b

    def test_capacity_respected(self):
        ds, schedules = _setup()
        for capacity in (1, 2, 5):
            placements = place_network(
                ds,
                schedules,
                make_policy("maxav"),
                k=3,
                capacity=capacity,
                seed=0,
            )
            load = hosting_load(placements)
            assert max(load.values(), default=0) <= capacity

    def test_tight_capacity_reduces_placements(self):
        ds, schedules = _setup()
        free = place_network(
            ds, schedules, make_policy("maxav"), k=3, seed=0
        )
        tight = place_network(
            ds, schedules, make_policy("maxav"), k=3, capacity=1, seed=0
        )
        total_free = sum(len(r) for r in free.values())
        total_tight = sum(len(r) for r in tight.values())
        assert total_tight < total_free

    def test_validation(self):
        ds, schedules = _setup()
        with pytest.raises(ValueError):
            place_network(
                ds, schedules, make_policy("maxav"), k=3, capacity=0
            )
        with pytest.raises(ValueError):
            place_network(ds, schedules, make_policy("maxav"), k=-1)

    def test_deterministic(self):
        ds, schedules = _setup()
        a = place_network(
            ds, schedules, make_policy("random"), k=2, capacity=3, seed=9
        )
        b = place_network(
            ds, schedules, make_policy("random"), k=2, capacity=3, seed=9
        )
        assert a == b

    def test_every_user_placed(self):
        ds, schedules = _setup()
        placements = place_network(
            ds, schedules, make_policy("mostactive"), k=2, capacity=4, seed=1
        )
        assert set(placements) == set(ds.graph.users())
