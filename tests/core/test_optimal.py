"""Tests for the brute-force optimal selection and the greedy gap."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MaxAvPlacement, PlacementContext
from repro.core.optimal import (
    MAX_CANDIDATES,
    greedy_optimality_gap,
    minimum_replicas_for_coverage,
    optimal_coverage,
)
from repro.datasets import ActivityTrace, Dataset
from repro.graph import SocialGraph
from repro.timeline import HOUR_SECONDS, IntervalSet


def _hours(start, end):
    return IntervalSet([(start * HOUR_SECONDS, end * HOUR_SECONDS)])


class TestOptimalCoverage:
    def test_owner_only_baseline(self):
        schedules = {0: _hours(0, 2)}
        universe = _hours(0, 24)
        cov, subset = optimal_coverage(0, [], schedules, universe, 3)
        assert cov == 2 * HOUR_SECONDS
        assert subset == ()

    def test_finds_complementary_pair(self):
        schedules = {
            0: _hours(0, 1),
            1: _hours(1, 8),  # 7h
            2: _hours(8, 15),  # 7h
            3: _hours(1, 9),  # 8h but overlaps both less efficiently
        }
        universe = _hours(0, 24)
        cov, subset = optimal_coverage(0, [1, 2, 3], schedules, universe, 2)
        # Optimal pair must cover 15h: [0,1)+[1,8)+[8,15).
        assert cov == 15 * HOUR_SECONDS
        assert set(subset) == {1, 2}

    def test_greedy_can_be_suboptimal_here(self):
        # Classic greedy trap: the big middle set blocks the optimal pair.
        schedules = {
            0: IntervalSet.empty(),
            1: _hours(0, 10),
            2: _hours(8, 18),
            3: _hours(4, 14),  # 10h, greedy's tempting first pick? equal size
        }
        universe = _hours(0, 18)
        cov, _ = optimal_coverage(0, [1, 2, 3], schedules, universe, 2)
        assert cov == 18 * HOUR_SECONDS

    def test_conrep_restricts_subsets(self):
        schedules = {
            0: _hours(0, 2),
            1: _hours(10, 20),  # big but disconnected from owner
            2: _hours(1, 5),  # connected
        }
        universe = _hours(0, 24)
        cov_uncon, sub_uncon = optimal_coverage(
            0, [1, 2], schedules, universe, 1, connected=False
        )
        cov_con, sub_con = optimal_coverage(
            0, [1, 2], schedules, universe, 1, connected=True
        )
        assert sub_uncon == (1,)
        assert sub_con == (2,)
        assert cov_con < cov_uncon

    def test_k_zero(self):
        schedules = {0: _hours(0, 2), 1: _hours(2, 4)}
        cov, subset = optimal_coverage(0, [1], schedules, _hours(0, 24), 0)
        assert subset == ()

    def test_size_guard(self):
        schedules = {i: _hours(0, 1) for i in range(MAX_CANDIDATES + 2)}
        with pytest.raises(ValueError):
            optimal_coverage(
                0,
                list(range(1, MAX_CANDIDATES + 2)),
                schedules,
                _hours(0, 24),
                2,
            )

    def test_negative_k(self):
        with pytest.raises(ValueError):
            optimal_coverage(0, [], {0: _hours(0, 1)}, _hours(0, 24), -1)


class TestMinimumReplicas:
    def test_zero_needed_when_owner_suffices(self):
        schedules = {0: _hours(0, 10), 1: _hours(0, 5)}
        subset = minimum_replicas_for_coverage(
            0, [1], schedules, _hours(0, 24), target=10 * HOUR_SECONDS
        )
        assert subset == ()

    def test_finds_smallest(self):
        schedules = {
            0: _hours(0, 1),
            1: _hours(1, 6),
            2: _hours(1, 3),
            3: _hours(3, 6),
        }
        subset = minimum_replicas_for_coverage(
            0, [1, 2, 3], schedules, _hours(0, 24), target=6 * HOUR_SECONDS
        )
        assert subset == (1,)

    def test_unreachable_target(self):
        schedules = {0: _hours(0, 1), 1: _hours(1, 2)}
        assert (
            minimum_replicas_for_coverage(
                0, [1], schedules, _hours(0, 24), target=10 * HOUR_SECONDS
            )
            is None
        )


class TestGreedyGap:
    def _random_instance(self, rng, n=8):
        schedules = {0: _hours(0, 1)}
        for i in range(1, n + 1):
            start = rng.uniform(0, 20)
            schedules[i] = _hours(start, start + rng.uniform(1, 6))
        return schedules

    def _greedy(self, schedules, candidates, k, connected):
        g = SocialGraph()
        for c in candidates:
            g.add_edge(0, c)
        ds = Dataset("t", "facebook", g, ActivityTrace([]))
        ctx = PlacementContext(
            dataset=ds,
            schedules=schedules,
            user=0,
            mode="conrep" if connected else "unconrep",
            rng=random.Random(0),
        )
        return MaxAvPlacement().select(ctx, k)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_greedy_within_classical_bound_unconstrained(self, seed):
        """Unconstrained greedy coverage >= (1 - 1/e) x optimal."""
        rng = random.Random(seed)
        schedules = self._random_instance(rng)
        candidates = list(range(1, 9))
        universe = IntervalSet.union_all(schedules.values())
        k = 3
        greedy_sel = self._greedy(schedules, candidates, k, connected=False)
        gap = greedy_optimality_gap(
            0, candidates, schedules, universe, greedy_sel, k
        )
        assert gap["greedy_coverage"] <= gap["optimal_coverage"] + 1e-9
        assert gap["ratio"] >= 1 - 1 / 2.718281828 - 1e-9

    def test_gap_dict_shape(self):
        schedules = {0: _hours(0, 1), 1: _hours(1, 3)}
        gap = greedy_optimality_gap(
            0, [1], schedules, _hours(0, 24), (1,), 1
        )
        assert set(gap) == {
            "greedy_coverage",
            "optimal_coverage",
            "ratio",
            "optimal_size",
        }
        assert gap["ratio"] == pytest.approx(1.0)
