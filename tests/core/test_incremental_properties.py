"""Equivalence contract of the incremental prefix-evaluation engine.

The engine promises that one forward pass over a selection sequence
produces, for every prefix degree, *float-identical* metrics to the naive
per-degree :func:`evaluate_user` oracle.  These tests exercise that
promise on randomized datasets (schedules with non-representable float
endpoints, empty schedules, both regimes, every policy, degrees past the
end of the sequence, infinite delays) with exact — not approximate —
field-for-field equality.
"""

import dataclasses
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CONREP,
    INCREMENTAL,
    NAIVE,
    IncrementalGroupEvaluator,
    PlacementContext,
    UNCONREP,
    UserMetrics,
    check_engine,
    evaluate_user,
    make_policy,
    select_cohort,
    sweep_replication_degree,
)
from repro.datasets import Activity, ActivityTrace, Dataset, synthetic_facebook
from repro.graph import SocialGraph
from repro.onlinetime import SporadicModel, compute_schedules
from repro.parallel.worker import SweepPayload, evaluate_users_chunk
from repro.timeline import DAY_SECONDS, IntervalSet

_NUM_FRIENDS = 8
_POLICIES = ["maxav", "mostactive", "random", "hybrid"]


def _sevenths(draw, lo, hi):
    """A float in [lo, hi] on a 1/7-second grid — deliberately not
    representable in binary, so float addition is non-associative and any
    operation-order drift between engine and oracle would show up."""
    return draw(st.integers(min_value=lo * 7, max_value=hi * 7)) / 7.0


@st.composite
def engine_instances(draw):
    """A star dataset with float schedules (empties allowed) + activity."""
    g = SocialGraph()
    for f in range(1, _NUM_FRIENDS + 1):
        g.add_edge(0, f)
    acts = []
    for _ in range(draw(st.integers(min_value=0, max_value=10))):
        acts.append(
            Activity(
                timestamp=_sevenths(draw, 0, 3 * DAY_SECONDS),
                creator=draw(st.integers(min_value=1, max_value=_NUM_FRIENDS)),
                receiver=0,
            )
        )
    dataset = Dataset("t", "facebook", g, ActivityTrace(acts))

    schedules = {}
    for u in range(_NUM_FRIENDS + 1):
        # 0-2 intervals per user; empty schedules allowed (never online).
        pairs = []
        for _ in range(draw(st.integers(min_value=0, max_value=2))):
            start = _sevenths(draw, 0, DAY_SECONDS - 2)
            length = _sevenths(draw, 1, 8 * 3600)
            pairs.append((start, min(start + length, DAY_SECONDS)))
        schedules[u] = IntervalSet(pairs, wrap=False)
    return dataset, schedules


def _assert_identical(got: UserMetrics, want: UserMetrics) -> None:
    for f in dataclasses.fields(UserMetrics):
        g, w = getattr(got, f.name), getattr(want, f.name)
        assert g == w, f"{f.name}: engine={g!r} naive={w!r}"


@settings(max_examples=60, deadline=None)
@given(
    instance=engine_instances(),
    policy_name=st.sampled_from(_POLICIES),
    mode=st.sampled_from([CONREP, UNCONREP]),
    seed=st.integers(min_value=0, max_value=50),
)
def test_engine_equals_naive_field_for_field(
    instance, policy_name, mode, seed
):
    """The core contract: every prefix degree, exactly the oracle's floats.

    Degrees run past the sequence length (the allowed degree keeps growing
    while the prefix saturates), and the placement uses the evaluator's
    own overlap cache — the production wiring.
    """
    dataset, schedules = instance
    evaluator = IncrementalGroupEvaluator(dataset, schedules, 0, mode=mode)
    ctx = PlacementContext(
        dataset=dataset,
        schedules=schedules,
        user=0,
        mode=mode,
        rng=random.Random(seed),
        overlap_cache=evaluator.overlap_cache,
    )
    sequence = make_policy(policy_name).select(ctx, _NUM_FRIENDS)
    degrees = tuple(range(_NUM_FRIENDS + 3))
    for k, got in zip(degrees, evaluator.evaluate_prefixes(sequence, degrees)):
        want = evaluate_user(
            dataset,
            schedules,
            0,
            sequence[:k],
            allowed_degree=k,
            mode=mode,
        )
        _assert_identical(got, want)


@settings(max_examples=40, deadline=None)
@given(
    instance=engine_instances(),
    policy_name=st.sampled_from(_POLICIES),
    mode=st.sampled_from([CONREP, UNCONREP]),
    seed=st.integers(min_value=0, max_value=50),
)
def test_overlap_cache_does_not_change_selection(
    instance, policy_name, mode, seed
):
    """Routing ConRep filtering through the shared cache must be invisible
    to the policies — same RNG stream, same selection."""
    dataset, schedules = instance
    policy = make_policy(policy_name)

    def run(cache):
        ctx = PlacementContext(
            dataset=dataset,
            schedules=schedules,
            user=0,
            mode=mode,
            rng=random.Random(seed),
            overlap_cache=cache,
        )
        return policy.select(ctx, _NUM_FRIENDS)

    evaluator = IncrementalGroupEvaluator(dataset, schedules, 0, mode=mode)
    assert run(evaluator.overlap_cache) == run(None)


@settings(max_examples=30, deadline=None)
@given(
    instance=engine_instances(),
    mode=st.sampled_from([CONREP, UNCONREP]),
    degrees=st.lists(
        st.integers(min_value=0, max_value=_NUM_FRIENDS + 2),
        min_size=1,
        max_size=6,
    ),
    seed=st.integers(min_value=0, max_value=50),
)
def test_arbitrary_degree_requests(instance, mode, degrees, seed):
    """Unordered/duplicated degree lists come back in request order and
    match the single-degree ``evaluate`` helper."""
    dataset, schedules = instance
    ctx = PlacementContext(
        dataset=dataset,
        schedules=schedules,
        user=0,
        mode=mode,
        rng=random.Random(seed),
    )
    sequence = make_policy("random").select(ctx, _NUM_FRIENDS)
    evaluator = IncrementalGroupEvaluator(dataset, schedules, 0, mode=mode)
    batch = evaluator.evaluate_prefixes(sequence, degrees)
    assert len(batch) == len(degrees)
    for k, got in zip(degrees, batch):
        assert got.allowed_degree == k
        _assert_identical(got, evaluator.evaluate(sequence, k))


class TestEdgeCases:
    def _star(self, schedules, acts=()):
        g = SocialGraph()
        for f in range(1, len(schedules)):
            g.add_edge(0, f)
        ds = Dataset("t", "facebook", g, ActivityTrace(list(acts)))
        return ds, dict(enumerate(schedules))

    def test_unconrep_infinite_delay_member(self):
        """A never-online replica makes the UnconRep delay infinite — in
        both engines, at exactly the degree it joins."""
        ds, schedules = self._star(
            [
                IntervalSet([(0, 3600)]),
                IntervalSet([(3600, 7200)]),
                IntervalSet.empty(),
            ]
        )
        evaluator = IncrementalGroupEvaluator(ds, schedules, 0, mode=UNCONREP)
        m1, m2 = evaluator.evaluate_prefixes((1, 2), (1, 2))
        assert m1.delay_hours_actual < float("inf")
        assert m2.delay_hours_actual == float("inf")
        assert m2.delay_hours_observed == float("inf")
        for k, got in ((1, m1), (2, m2)):
            want = evaluate_user(
                ds, schedules, 0, (1, 2)[:k], allowed_degree=k, mode=UNCONREP
            )
            _assert_identical(got, want)

    def test_conrep_disconnected_pair_is_inf(self):
        ds, schedules = self._star(
            [IntervalSet([(0, 3600)]), IntervalSet([(7200, 10800)])]
        )
        got = IncrementalGroupEvaluator(ds, schedules, 0).evaluate((1,), 1)
        assert got.delay_hours_actual == float("inf")
        _assert_identical(
            got, evaluate_user(ds, schedules, 0, (1,), allowed_degree=1)
        )

    def test_empty_owner_schedule(self):
        ds, schedules = self._star(
            [IntervalSet.empty(), IntervalSet([(0, 7200)])],
            acts=[Activity(timestamp=100.0, creator=1, receiver=0)],
        )
        for mode in (CONREP, UNCONREP):
            evaluator = IncrementalGroupEvaluator(ds, schedules, 0, mode=mode)
            for k, got in zip(
                (0, 1), evaluator.evaluate_prefixes((1,), (0, 1))
            ):
                want = evaluate_user(
                    ds, schedules, 0, (1,)[:k], allowed_degree=k, mode=mode
                )
                _assert_identical(got, want)

    def test_owner_in_sequence_rejected(self):
        ds, schedules = self._star([IntervalSet([(0, 3600)])] * 2)
        evaluator = IncrementalGroupEvaluator(ds, schedules, 0)
        with pytest.raises(ValueError):
            evaluator.evaluate_prefixes((0, 1), (1,))

    def test_negative_degree_rejected(self):
        ds, schedules = self._star([IntervalSet([(0, 3600)])] * 2)
        evaluator = IncrementalGroupEvaluator(ds, schedules, 0)
        with pytest.raises(ValueError):
            evaluator.evaluate_prefixes((1,), (-1, 0))

    def test_empty_degree_request(self):
        ds, schedules = self._star([IntervalSet([(0, 3600)])] * 2)
        evaluator = IncrementalGroupEvaluator(ds, schedules, 0)
        assert evaluator.evaluate_prefixes((1,), ()) == ()

    def test_unknown_mode_rejected(self):
        ds, schedules = self._star([IntervalSet([(0, 3600)])] * 2)
        with pytest.raises(ValueError):
            IncrementalGroupEvaluator(ds, schedules, 0, mode="bogus")

    def test_check_engine(self):
        assert check_engine(NAIVE) == NAIVE
        assert check_engine(INCREMENTAL) == INCREMENTAL
        with pytest.raises(ValueError):
            check_engine("turbo")


class TestEngineIntegration:
    """Engine selection through the worker kernel and the sweep harness."""

    def _payload(self, engine):
        ds = synthetic_facebook(400, seed=11)
        schedules = compute_schedules(ds, SporadicModel(), seed=11)
        return (
            SweepPayload(
                dataset=ds,
                schedules=schedules,
                policies=tuple(make_policy(p) for p in _POLICIES),
                mode=CONREP,
                degrees=tuple(range(5)),
                max_degree=4,
                seed=11,
                engine=engine,
            ),
            select_cohort(ds, 10, max_users=6),
        )

    def test_worker_chunk_engines_identical(self):
        naive_payload, users = self._payload(NAIVE)
        incr_payload, _ = self._payload(INCREMENTAL)
        assert evaluate_users_chunk(
            incr_payload, users
        ) == evaluate_users_chunk(naive_payload, users)

    def test_sweep_engines_identical(self):
        ds = synthetic_facebook(400, seed=3)
        results = {}
        for engine in (NAIVE, INCREMENTAL):
            results[engine] = sweep_replication_degree(
                ds,
                SporadicModel(),
                [make_policy("maxav"), make_policy("random")],
                degrees=list(range(4)),
                users=select_cohort(ds, 10, max_users=5),
                seed=7,
                repeats=2,
                engine=engine,
            )
        assert results[NAIVE] == results[INCREMENTAL]  # exact, all floats

    def test_unknown_engine_rejected(self):
        payload, users = self._payload(NAIVE)
        with pytest.raises(ValueError):
            evaluate_users_chunk(
                dataclasses.replace(payload, engine="bogus"), users
            )
