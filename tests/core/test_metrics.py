"""Tests for the per-user metric computation."""

import math

import pytest

from repro.core import CONREP, UNCONREP, evaluate_user, profile_schedule
from repro.datasets import Activity, ActivityTrace, Dataset
from repro.graph import SocialGraph
from repro.timeline import DAY_SECONDS, HOUR_SECONDS, IntervalSet


def _hours(start, end):
    return IntervalSet([(start * HOUR_SECONDS, end * HOUR_SECONDS)])


def _dataset(num_friends, activities=()):
    g = SocialGraph()
    for f in range(1, num_friends + 1):
        g.add_edge(0, f)
    return Dataset("t", "facebook", g, ActivityTrace(activities))


class TestProfileSchedule:
    def test_union_of_owner_and_replicas(self):
        schedules = {0: _hours(0, 1), 1: _hours(2, 3), 2: _hours(4, 5)}
        sched = profile_schedule(0, [1, 2], schedules)
        assert sched.measure == 3 * HOUR_SECONDS

    def test_missing_schedules_treated_empty(self):
        assert profile_schedule(0, [1], {}).is_empty


class TestAvailability:
    def test_degree_zero_is_owner_online_fraction(self):
        ds = _dataset(2)
        schedules = {0: _hours(0, 6), 1: _hours(0, 24), 2: _hours(0, 24)}
        m = evaluate_user(ds, schedules, 0, [])
        assert m.availability == pytest.approx(0.25)
        assert m.replication_degree == 0
        assert m.delay_hours_actual == 0.0

    def test_replicas_add_availability(self):
        ds = _dataset(1)
        schedules = {0: _hours(0, 6), 1: _hours(6, 12)}
        m = evaluate_user(ds, schedules, 0, [1])
        assert m.availability == pytest.approx(0.5)

    def test_max_achievable_is_friends_union_plus_owner(self):
        ds = _dataset(2)
        schedules = {0: _hours(0, 2), 1: _hours(4, 6), 2: _hours(5, 7)}
        m = evaluate_user(ds, schedules, 0, [])
        assert m.max_achievable_availability == pytest.approx(5 / 24)


class TestAodTime:
    def test_full_when_replicas_cover_friend_time(self):
        ds = _dataset(2)
        schedules = {0: _hours(0, 24), 1: _hours(4, 6), 2: _hours(5, 7)}
        m = evaluate_user(ds, schedules, 0, [])
        assert m.aod_time == 1.0  # owner alone covers everything

    def test_partial_coverage(self):
        ds = _dataset(2)
        schedules = {
            0: _hours(0, 2),  # owner covers friend 1's [0,2)? friend1 below
            1: _hours(0, 4),
            2: _hours(10, 14),
        }
        m = evaluate_user(ds, schedules, 0, [])
        # friends union 8h; owner covers [0,2) = 2h.
        assert m.aod_time == pytest.approx(0.25)

    def test_vacuous_when_friends_never_online(self):
        ds = _dataset(1)
        schedules = {0: _hours(0, 1), 1: IntervalSet.empty()}
        m = evaluate_user(ds, schedules, 0, [])
        assert m.aod_time == 1.0


class TestAodActivity:
    def test_counts_served_instants(self):
        acts = [
            Activity(timestamp=1 * HOUR_SECONDS, creator=1, receiver=0),
            Activity(timestamp=12 * HOUR_SECONDS, creator=1, receiver=0),
        ]
        ds = _dataset(1, acts)
        schedules = {0: _hours(0, 2), 1: _hours(11, 13)}
        m = evaluate_user(ds, schedules, 0, [])
        # Owner online at 01:00 only -> 1 of 2 served.
        assert m.aod_activity == pytest.approx(0.5)
        with_replica = evaluate_user(ds, schedules, 0, [1])
        assert with_replica.aod_activity == 1.0

    def test_expected_unexpected_split(self):
        acts = [
            Activity(timestamp=1 * HOUR_SECONDS, creator=1, receiver=0),
            Activity(timestamp=12 * HOUR_SECONDS, creator=1, receiver=0),
        ]
        ds = _dataset(1, acts)
        # Creator 1 online only around 12:00 -> first activity unexpected.
        schedules = {0: _hours(0, 2), 1: _hours(11, 13)}
        m = evaluate_user(ds, schedules, 0, [])
        assert m.expected_activity_fraction == pytest.approx(0.5)
        assert m.aod_activity_expected == 0.0  # 12:00 not served by owner
        assert m.aod_activity_unexpected == 1.0  # 01:00 served by owner

    def test_vacuous_when_no_profile_activity(self):
        ds = _dataset(1)
        schedules = {0: _hours(0, 1), 1: _hours(0, 1)}
        m = evaluate_user(ds, schedules, 0, [])
        assert m.aod_activity == 1.0


class TestDelayModes:
    def test_conrep_uses_graph_delay(self):
        ds = _dataset(1)
        schedules = {0: _hours(0, 4), 1: _hours(2, 6)}
        m = evaluate_user(ds, schedules, 0, [1], mode=CONREP)
        assert m.delay_hours_actual == pytest.approx(22.0)
        assert m.delay_hours_observed <= m.delay_hours_actual

    def test_unconrep_uses_cdn_delay(self):
        ds = _dataset(1)
        schedules = {0: _hours(0, 4), 1: _hours(10, 12)}
        m = evaluate_user(ds, schedules, 0, [1], mode=UNCONREP)
        assert m.delay_hours_actual == pytest.approx(42.0)
        assert m.delay_hours_observed <= m.delay_hours_actual

    def test_disconnected_conrep_is_inf(self):
        ds = _dataset(1)
        schedules = {0: _hours(0, 1), 1: _hours(10, 11)}
        m = evaluate_user(ds, schedules, 0, [1], mode=CONREP)
        assert math.isinf(m.delay_hours_actual)

    def test_mode_validation(self):
        ds = _dataset(1)
        with pytest.raises(ValueError):
            evaluate_user(ds, {0: _hours(0, 1)}, 0, [], mode="hybrid")

    def test_allowed_degree_recorded(self):
        ds = _dataset(1)
        schedules = {0: _hours(0, 4), 1: _hours(2, 6)}
        m = evaluate_user(ds, schedules, 0, [1], allowed_degree=5)
        assert m.allowed_degree == 5
        assert m.replication_degree == 1
