"""Tests for the replica time-connectivity graph and delay metrics.

Includes the paper's own worked example (Fig. 1): three replicas v1, v2,
v3 where v1 overlaps v2 by d1 hours, v2 overlaps v3 by d2 hours, and v1
does not overlap v3 — the update propagation delay must come out at
48 − d1 − d2 hours.
"""

import math

import pytest

from repro.core import (
    ReplicaGroup,
    actual_propagation_delay_hours,
    connectivity_edges,
    is_connected,
    observed_propagation_delay_hours,
    shortest_path_lengths,
    unconrep_propagation_delay_hours,
)
from repro.timeline import DAY_SECONDS, HOUR_SECONDS, IntervalSet


def _hours(start, end):
    return IntervalSet([(start * HOUR_SECONDS, end * HOUR_SECONDS)])


def _group(owner_sched, replica_scheds):
    schedules = {0: owner_sched}
    replicas = []
    for i, sched in enumerate(replica_scheds, start=1):
        schedules[i] = sched
        replicas.append(i)
    return ReplicaGroup(owner=0, replicas=tuple(replicas), schedules=schedules)


class TestReplicaGroup:
    def test_members_include_owner_first(self):
        g = _group(_hours(0, 1), [_hours(1, 2)])
        assert g.members == (0, 1)
        assert g.replication_degree == 1

    def test_union_schedule(self):
        g = _group(_hours(0, 1), [_hours(2, 3)])
        assert g.union_schedule().measure == 2 * HOUR_SECONDS

    def test_missing_schedule_rejected(self):
        with pytest.raises(ValueError):
            ReplicaGroup(owner=0, replicas=(1,), schedules={0: _hours(0, 1)})

    def test_owner_listed_as_replica_rejected(self):
        with pytest.raises(ValueError):
            ReplicaGroup(
                owner=0, replicas=(0,), schedules={0: _hours(0, 1)}
            )


class TestConnectivityEdges:
    def test_edge_weight_is_day_minus_overlap(self):
        g = _group(_hours(0, 4), [_hours(2, 6)])  # overlap 2h
        edges = connectivity_edges(g)
        assert edges[0][1] == DAY_SECONDS - 2 * HOUR_SECONDS
        assert edges[1][0] == edges[0][1]

    def test_no_edge_without_overlap(self):
        g = _group(_hours(0, 2), [_hours(5, 7)])
        edges = connectivity_edges(g)
        assert edges[0] == {}
        assert edges[1] == {}


class TestShortestPaths:
    def test_direct_and_multi_hop(self):
        edges = {0: {1: 5.0}, 1: {0: 5.0, 2: 7.0}, 2: {1: 7.0}}
        dist = shortest_path_lengths(edges, 0)
        assert dist == {0: 0.0, 1: 5.0, 2: 12.0}

    def test_unreachable_is_inf(self):
        edges = {0: {}, 1: {}}
        dist = shortest_path_lengths(edges, 0)
        assert dist[1] == math.inf

    def test_prefers_cheaper_indirect_path(self):
        edges = {
            0: {1: 10.0, 2: 1.0},
            1: {0: 10.0, 2: 1.0},
            2: {0: 1.0, 1: 1.0},
        }
        dist = shortest_path_lengths(edges, 0)
        assert dist[1] == 2.0


class TestIsConnected:
    def test_chain_is_connected(self):
        g = _group(_hours(0, 3), [_hours(2, 5), _hours(4, 7)])
        assert is_connected(g)

    def test_disconnected_group(self):
        g = _group(_hours(0, 1), [_hours(10, 11)])
        assert not is_connected(g)

    def test_singleton_connected(self):
        g = _group(_hours(0, 1), [])
        assert is_connected(g)


class TestActualDelay:
    def test_paper_fig1_example(self):
        # v1 = owner [0,4], v2 [3,8] (d1 = 1h), v3 [7,10] (d2 = 1h),
        # v1 and v3 do not overlap.
        g = _group(_hours(0, 4), [_hours(3, 8), _hours(7, 10)])
        d1 = d2 = 1
        expected = 48 - d1 - d2
        assert actual_propagation_delay_hours(g) == pytest.approx(expected)

    def test_single_member_zero(self):
        assert actual_propagation_delay_hours(_group(_hours(0, 1), [])) == 0.0

    def test_two_members(self):
        g = _group(_hours(0, 4), [_hours(2, 6)])  # overlap 2h
        assert actual_propagation_delay_hours(g) == pytest.approx(22.0)

    def test_disconnected_is_inf(self):
        g = _group(_hours(0, 1), [_hours(10, 11)])
        assert actual_propagation_delay_hours(g) == math.inf

    def test_more_overlap_less_delay(self):
        small = _group(_hours(0, 4), [_hours(3, 7)])  # 1h overlap
        big = _group(_hours(0, 4), [_hours(1, 5)])  # 3h overlap
        assert actual_propagation_delay_hours(big) < actual_propagation_delay_hours(
            small
        )

    def test_triangle_uses_shortest_paths(self):
        # All three pairwise overlap 1h -> direct edges of 23h each; the
        # diameter is a single edge, not a 2-hop path.
        g = _group(
            _hours(0, 2),
            [_hours(1, 3), _hours(1.5, 2.5)],
        )
        assert actual_propagation_delay_hours(g) <= 23.5


class TestObservedDelay:
    def test_observed_leq_actual(self):
        g = _group(_hours(0, 4), [_hours(3, 8), _hours(7, 10)])
        assert observed_propagation_delay_hours(g) <= actual_propagation_delay_hours(
            g
        )

    def test_observed_counts_only_online_time(self):
        # Actual delay 22h; receiver online 4h/day -> observed at most 4h.
        g = _group(_hours(0, 4), [_hours(2, 6)])
        assert observed_propagation_delay_hours(g) <= 4.0
        assert observed_propagation_delay_hours(g) > 0.0

    def test_singleton_zero(self):
        assert observed_propagation_delay_hours(_group(_hours(0, 1), [])) == 0.0

    def test_disconnected_inf(self):
        g = _group(_hours(0, 1), [_hours(10, 11)])
        assert observed_propagation_delay_hours(g) == math.inf


class TestUnconRepDelay:
    def test_sum_of_waits(self):
        # Owner online 4h (wait 20h), replica online 2h (wait 22h).
        g = _group(_hours(0, 4), [_hours(10, 12)])
        assert unconrep_propagation_delay_hours(g) == pytest.approx(42.0)

    def test_singleton_zero(self):
        assert unconrep_propagation_delay_hours(_group(_hours(0, 1), [])) == 0.0

    def test_never_online_member_inf(self):
        g = _group(_hours(0, 1), [IntervalSet.empty()])
        assert unconrep_propagation_delay_hours(g) == math.inf

    def test_unconrep_can_beat_conrep_when_disconnected(self):
        g = _group(_hours(0, 4), [_hours(10, 12)])
        assert actual_propagation_delay_hours(g) == math.inf
        assert unconrep_propagation_delay_hours(g) < math.inf
