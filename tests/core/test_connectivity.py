"""Tests for the replica time-connectivity graph and delay metrics.

Includes the paper's own worked example (Fig. 1): three replicas v1, v2,
v3 where v1 overlaps v2 by d1 hours, v2 overlaps v3 by d2 hours, and v1
does not overlap v3 — the update propagation delay must come out at
48 − d1 − d2 hours.
"""

import math
import random

import pytest

from repro.core import (
    IncrementalAPSP,
    OverlapCache,
    ReplicaGroup,
    actual_propagation_delay_hours,
    connectivity_edges,
    group_apsp,
    is_connected,
    member_edge_weights,
    observed_propagation_delay_hours,
    shortest_path_lengths,
    unconrep_propagation_delay_hours,
)
from repro.timeline import DAY_SECONDS, HOUR_SECONDS, IntervalSet


def _hours(start, end):
    return IntervalSet([(start * HOUR_SECONDS, end * HOUR_SECONDS)])


def _group(owner_sched, replica_scheds):
    schedules = {0: owner_sched}
    replicas = []
    for i, sched in enumerate(replica_scheds, start=1):
        schedules[i] = sched
        replicas.append(i)
    return ReplicaGroup(owner=0, replicas=tuple(replicas), schedules=schedules)


class TestReplicaGroup:
    def test_members_include_owner_first(self):
        g = _group(_hours(0, 1), [_hours(1, 2)])
        assert g.members == (0, 1)
        assert g.replication_degree == 1

    def test_union_schedule(self):
        g = _group(_hours(0, 1), [_hours(2, 3)])
        assert g.union_schedule().measure == 2 * HOUR_SECONDS

    def test_missing_schedule_rejected(self):
        with pytest.raises(ValueError):
            ReplicaGroup(owner=0, replicas=(1,), schedules={0: _hours(0, 1)})

    def test_owner_listed_as_replica_rejected(self):
        with pytest.raises(ValueError):
            ReplicaGroup(
                owner=0, replicas=(0,), schedules={0: _hours(0, 1)}
            )


class TestConnectivityEdges:
    def test_edge_weight_is_day_minus_overlap(self):
        g = _group(_hours(0, 4), [_hours(2, 6)])  # overlap 2h
        edges = connectivity_edges(g)
        assert edges[0][1] == DAY_SECONDS - 2 * HOUR_SECONDS
        assert edges[1][0] == edges[0][1]

    def test_no_edge_without_overlap(self):
        g = _group(_hours(0, 2), [_hours(5, 7)])
        edges = connectivity_edges(g)
        assert edges[0] == {}
        assert edges[1] == {}


class TestShortestPaths:
    def test_direct_and_multi_hop(self):
        edges = {0: {1: 5.0}, 1: {0: 5.0, 2: 7.0}, 2: {1: 7.0}}
        dist = shortest_path_lengths(edges, 0)
        assert dist == {0: 0.0, 1: 5.0, 2: 12.0}

    def test_unreachable_is_inf(self):
        edges = {0: {}, 1: {}}
        dist = shortest_path_lengths(edges, 0)
        assert dist[1] == math.inf

    def test_prefers_cheaper_indirect_path(self):
        edges = {
            0: {1: 10.0, 2: 1.0},
            1: {0: 10.0, 2: 1.0},
            2: {0: 1.0, 1: 1.0},
        }
        dist = shortest_path_lengths(edges, 0)
        assert dist[1] == 2.0


class TestIsConnected:
    def test_chain_is_connected(self):
        g = _group(_hours(0, 3), [_hours(2, 5), _hours(4, 7)])
        assert is_connected(g)

    def test_disconnected_group(self):
        g = _group(_hours(0, 1), [_hours(10, 11)])
        assert not is_connected(g)

    def test_singleton_connected(self):
        g = _group(_hours(0, 1), [])
        assert is_connected(g)


class TestActualDelay:
    def test_paper_fig1_example(self):
        # v1 = owner [0,4], v2 [3,8] (d1 = 1h), v3 [7,10] (d2 = 1h),
        # v1 and v3 do not overlap.
        g = _group(_hours(0, 4), [_hours(3, 8), _hours(7, 10)])
        d1 = d2 = 1
        expected = 48 - d1 - d2
        assert actual_propagation_delay_hours(g) == pytest.approx(expected)

    def test_single_member_zero(self):
        assert actual_propagation_delay_hours(_group(_hours(0, 1), [])) == 0.0

    def test_two_members(self):
        g = _group(_hours(0, 4), [_hours(2, 6)])  # overlap 2h
        assert actual_propagation_delay_hours(g) == pytest.approx(22.0)

    def test_disconnected_is_inf(self):
        g = _group(_hours(0, 1), [_hours(10, 11)])
        assert actual_propagation_delay_hours(g) == math.inf

    def test_more_overlap_less_delay(self):
        small = _group(_hours(0, 4), [_hours(3, 7)])  # 1h overlap
        big = _group(_hours(0, 4), [_hours(1, 5)])  # 3h overlap
        assert actual_propagation_delay_hours(big) < actual_propagation_delay_hours(
            small
        )

    def test_triangle_uses_shortest_paths(self):
        # All three pairwise overlap 1h -> direct edges of 23h each; the
        # diameter is a single edge, not a 2-hop path.
        g = _group(
            _hours(0, 2),
            [_hours(1, 3), _hours(1.5, 2.5)],
        )
        assert actual_propagation_delay_hours(g) <= 23.5


class TestObservedDelay:
    def test_observed_leq_actual(self):
        g = _group(_hours(0, 4), [_hours(3, 8), _hours(7, 10)])
        assert observed_propagation_delay_hours(g) <= actual_propagation_delay_hours(
            g
        )

    def test_observed_counts_only_online_time(self):
        # Actual delay 22h; receiver online 4h/day -> observed at most 4h.
        g = _group(_hours(0, 4), [_hours(2, 6)])
        assert observed_propagation_delay_hours(g) <= 4.0
        assert observed_propagation_delay_hours(g) > 0.0

    def test_singleton_zero(self):
        assert observed_propagation_delay_hours(_group(_hours(0, 1), [])) == 0.0

    def test_disconnected_inf(self):
        g = _group(_hours(0, 1), [_hours(10, 11)])
        assert observed_propagation_delay_hours(g) == math.inf


class TestIncrementalAPSP:
    def _random_graph(self, rng, n):
        """Random symmetric positive weights with some edges missing."""
        weights = {}
        for i in range(n):
            for j in range(i):
                if rng.random() < 0.6:
                    weights[(i, j)] = rng.random() * 100.0 + 1.0
        return weights

    def test_matches_dijkstra_on_random_graphs(self):
        rng = random.Random(7)
        for _ in range(25):
            n = rng.randint(1, 8)
            weights = self._random_graph(rng, n)
            apsp = IncrementalAPSP()
            for i in range(n):
                apsp.insert(
                    i,
                    {j: w for (a, j), w in weights.items() if a == i},
                )
            edges = {i: {} for i in range(n)}
            for (i, j), w in weights.items():
                edges[i][j] = w
                edges[j][i] = w
            for src in range(n):
                dist = shortest_path_lengths(edges, src)
                for dst in range(n):
                    assert apsp.distance(src, dst) == pytest.approx(
                        dist[dst]
                    ) or (
                        apsp.distance(src, dst) == math.inf
                        and dist[dst] == math.inf
                    )

    def test_insertion_order_is_recorded(self):
        apsp = IncrementalAPSP()
        apsp.insert("b", {})
        apsp.insert("a", {"b": 3.0})
        assert apsp.nodes == ("b", "a")
        assert len(apsp) == 2
        assert apsp.distance("a", "b") == 3.0

    def test_duplicate_insert_rejected(self):
        apsp = IncrementalAPSP()
        apsp.insert(0, {})
        with pytest.raises(ValueError):
            apsp.insert(0, {})

    def test_new_node_bridges_old_components(self):
        # 0 and 1 start disconnected; 2 connects them with 1 + 2 = 3.
        apsp = IncrementalAPSP()
        apsp.insert(0, {})
        apsp.insert(1, {})
        assert apsp.distance(0, 1) == math.inf
        apsp.insert(2, {0: 1.0, 1: 2.0})
        assert apsp.distance(0, 1) == 3.0
        assert apsp.distance(1, 0) == 3.0
        assert apsp.diameter_seconds() == 3.0

    def test_diameter_trivial_cases(self):
        apsp = IncrementalAPSP()
        assert apsp.diameter_seconds() == 0.0
        apsp.insert(0, {})
        assert apsp.diameter_seconds() == 0.0

    def test_prefix_state_equals_rebuild(self):
        """The engine's bit-identity hinge: the state after k insertions
        must equal a from-scratch build over the first k nodes, exactly."""
        rng = random.Random(3)
        n = 7
        weights = self._random_graph(rng, n)
        running = IncrementalAPSP()
        for k in range(n):
            running.insert(
                k, {j: w for (a, j), w in weights.items() if a == k}
            )
            rebuilt = IncrementalAPSP()
            for i in range(k + 1):
                rebuilt.insert(
                    i, {j: w for (a, j), w in weights.items() if a == i}
                )
            for i in range(k + 1):
                for j in range(k + 1):
                    assert running.distance(i, j) == rebuilt.distance(i, j)

    def test_group_apsp_matches_connectivity_edges(self):
        g = _group(_hours(0, 4), [_hours(3, 8), _hours(7, 10)])
        apsp = group_apsp(g)
        edges = connectivity_edges(g)
        for src in g.members:
            dist = shortest_path_lengths(edges, src)
            for dst in g.members:
                assert apsp.distance(src, dst) == dist[dst]

    def test_member_edge_weights_skip_disjoint(self):
        g = _group(_hours(0, 4), [_hours(2, 6), _hours(10, 12)])
        cache = OverlapCache(g.schedules)
        weights = member_edge_weights(cache, 2, (0, 1))
        assert weights == {}  # replica 2 overlaps nobody
        weights = member_edge_weights(cache, 1, (0,))
        assert weights == {0: DAY_SECONDS - 2 * HOUR_SECONDS}


class TestOverlapCache:
    def test_matches_direct_overlap_and_memoizes(self):
        schedules = {0: _hours(0, 4), 1: _hours(2, 6)}
        cache = OverlapCache(schedules)
        direct = schedules[0].overlap(schedules[1])
        assert cache.overlap(0, 1) == direct
        assert cache.overlap(1, 0) == direct  # symmetric key
        assert len(cache._cache) == 1
        assert cache.overlaps(0, 1)

    def test_missing_user_counts_as_never_online(self):
        cache = OverlapCache({0: _hours(0, 4)})
        assert cache.overlap(0, 99) == 0.0
        assert not cache.overlaps(0, 99)
        assert cache.schedule_of(99).is_empty


class TestOverlapCacheEviction:
    def _schedules(self, n=8):
        return {u: _hours(u % 12, u % 12 + 4 + (u % 3)) for u in range(n)}

    def test_bounded_matches_unbounded_everywhere(self):
        schedules = self._schedules()
        unbounded = OverlapCache(schedules)
        bounded = OverlapCache(schedules, max_rows=2)
        users = sorted(schedules)
        for a in users:
            for b in users:
                assert bounded.overlap(a, b) == unbounded.overlap(a, b)
        assert len(bounded) <= 2
        assert bounded.evictions > 0
        assert unbounded.evictions == 0

    def test_evicted_then_refilled_entry_is_bit_identical(self):
        # The eviction-correctness regression: force an entry out, touch
        # enough other pairs to be sure it is gone, then re-ask — the
        # recomputed value must equal the original float bit for bit.
        schedules = self._schedules()
        cache = OverlapCache(schedules, max_rows=2)
        original = cache.overlap(0, 1)
        for a in range(2, 8):
            for b in range(a + 1, 8):
                cache.overlap(a, b)
        assert len(cache) == 2
        refilled = cache.overlap(0, 1)
        assert refilled == original
        assert refilled == schedules[0].overlap(schedules[1])

    def test_lru_order_recency_not_insertion(self):
        schedules = self._schedules(4)
        cache = OverlapCache(schedules, max_rows=2)
        cache.overlap(0, 1)
        cache.overlap(0, 2)
        cache.overlap(0, 1)  # touch: (0,1) is now most recent
        cache.overlap(0, 3)  # evicts (0,2), not (0,1)
        evictions = cache.evictions
        assert evictions == 1
        cache.overlap(0, 1)  # still resident: no new eviction
        assert cache.evictions == evictions

    def test_unbounded_default_has_no_lru_machinery(self):
        cache = OverlapCache(self._schedules(4))
        assert cache.max_rows is None
        assert type(cache._cache) is dict  # plain dict: zero overhead

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            OverlapCache(self._schedules(2), max_rows=0)

    def test_seed_prefills_and_existing_entries_win(self):
        schedules = self._schedules(4)
        cache = OverlapCache(schedules, max_rows=4)
        true_value = schedules[0].overlap(schedules[1])
        cache.seed(0, 1, true_value)
        assert cache.overlap(0, 1) == true_value
        computed = cache.overlap(2, 3)
        cache.seed(2, 3, -1.0)  # ignored: the entry already exists
        assert cache.overlap(2, 3) == computed


class TestUnconRepDelay:
    def test_sum_of_waits(self):
        # Owner online 4h (wait 20h), replica online 2h (wait 22h).
        g = _group(_hours(0, 4), [_hours(10, 12)])
        assert unconrep_propagation_delay_hours(g) == pytest.approx(42.0)

    def test_singleton_zero(self):
        assert unconrep_propagation_delay_hours(_group(_hours(0, 1), [])) == 0.0

    def test_never_online_member_inf(self):
        g = _group(_hours(0, 1), [IntervalSet.empty()])
        assert unconrep_propagation_delay_hours(g) == math.inf

    def test_unconrep_can_beat_conrep_when_disconnected(self):
        g = _group(_hours(0, 4), [_hours(10, 12)])
        assert actual_propagation_delay_hours(g) == math.inf
        assert unconrep_propagation_delay_hours(g) < math.inf

    def test_duplicate_maximum_wait_counted_twice(self):
        # Two members tie for the largest wait (22h each); the top-2 scan
        # must sum the duplicate, not pair the max with the third value.
        g = _group(_hours(0, 2), [_hours(5, 7), _hours(10, 14)])
        assert unconrep_propagation_delay_hours(g) == pytest.approx(44.0)

    def test_size_two_group_sums_both_waits(self):
        # Owner + one replica: exactly the two members' waits, regardless
        # of which is larger.
        g = _group(_hours(0, 6), [_hours(10, 12)])  # waits 18h, 22h
        assert unconrep_propagation_delay_hours(g) == pytest.approx(40.0)
        flipped = _group(_hours(10, 12), [_hours(0, 6)])
        assert unconrep_propagation_delay_hours(flipped) == pytest.approx(40.0)

    def test_matches_quadratic_pair_scan(self):
        # Reference oracle: the worst ordered pair of waits, O(n²).
        rng = random.Random(11)
        for _ in range(20):
            scheds = []
            for _ in range(rng.randint(1, 6)):
                start = rng.random() * 20
                scheds.append(_hours(start, start + rng.random() * 4))
            g = _group(scheds[0], scheds[1:])
            waits = [
                DAY_SECONDS - g.schedules[m].measure for m in g.members
            ]
            if len(waits) <= 1:
                expected = 0.0
            else:
                expected = max(
                    waits[i] + waits[j]
                    for i in range(len(waits))
                    for j in range(len(waits))
                    if i != j
                ) / HOUR_SECONDS
            assert unconrep_propagation_delay_hours(g) == pytest.approx(
                expected
            )
