"""Tests for the greedy set-cover primitives."""

import pytest

from repro.core import IntervalUniverse, PointUniverse, greedy_cover
from repro.timeline import DAY_SECONDS, IntervalSet


def _iv(*pairs):
    return IntervalSet(list(pairs))


class TestIntervalUniverse:
    def test_gain_counts_only_universe_mass(self):
        universe = IntervalUniverse(_iv((0, 100)))
        assert universe.gain(_iv((50, 200))) == 50

    def test_commit_reduces_future_gain(self):
        universe = IntervalUniverse(_iv((0, 200)))
        universe.commit(_iv((0, 100)))
        assert universe.gain(_iv((0, 150))) == 50
        assert universe.covered_measure == 100
        assert universe.remaining_measure == 100

    def test_precovered(self):
        universe = IntervalUniverse(_iv((0, 100)), covered=_iv((0, 40)))
        assert universe.remaining_measure == 60
        assert universe.gain(_iv((0, 100))) == 60

    def test_covered_outside_universe_ignored(self):
        universe = IntervalUniverse(_iv((0, 100)), covered=_iv((500, 600)))
        assert universe.covered_measure == 0


class TestPointUniverse:
    def test_gain_counts_points(self):
        universe = PointUniverse([10, 20, 30])
        assert universe.gain(_iv((0, 25))) == 2

    def test_commit_removes_points(self):
        universe = PointUniverse([10, 20, 30])
        universe.commit(_iv((0, 25)))
        assert universe.remaining_measure == 1
        assert universe.covered_measure == 2
        assert universe.gain(_iv((0, 100))) == 1

    def test_points_project_onto_day(self):
        universe = PointUniverse([DAY_SECONDS + 50])
        assert universe.gain(_iv((0, 100))) == 1

    def test_precovered(self):
        universe = PointUniverse([10, 500], covered=_iv((0, 100)))
        assert universe.total_measure == 2
        assert universe.remaining_measure == 1

    def test_duplicate_instants_count_separately(self):
        universe = PointUniverse([10, 10, 10])
        assert universe.gain(_iv((0, 20))) == 3


class TestGreedyCover:
    def test_picks_largest_first(self):
        universe = IntervalUniverse(_iv((0, 1000)))
        candidates = {
            "small": _iv((0, 100)),
            "big": _iv((0, 500)),
            "mid": _iv((400, 700)),
        }
        picked = greedy_cover(universe, candidates)
        assert picked[0] == "big"

    def test_stops_when_no_gain(self):
        universe = IntervalUniverse(_iv((0, 100)))
        candidates = {"a": _iv((0, 100)), "b": _iv((0, 100))}
        picked = greedy_cover(universe, candidates)
        assert picked == ("a",)

    def test_respects_max_picks(self):
        universe = IntervalUniverse(_iv((0, 300)))
        candidates = {
            "a": _iv((0, 100)),
            "b": _iv((100, 200)),
            "c": _iv((200, 300)),
        }
        picked = greedy_cover(universe, candidates, max_picks=2)
        assert len(picked) == 2

    def test_achieves_full_cover_when_possible(self):
        universe = IntervalUniverse(_iv((0, 300)))
        candidates = {
            "a": _iv((0, 150)),
            "b": _iv((100, 250)),
            "c": _iv((200, 300)),
        }
        greedy_cover(universe, candidates)
        assert universe.remaining_measure == 0

    def test_deterministic_tie_break_by_key(self):
        universe = IntervalUniverse(_iv((0, 100)))
        candidates = {"z": _iv((0, 100)), "a": _iv((0, 100))}
        assert greedy_cover(universe, candidates) == ("a",)

    def test_selection_order_regression_on_seeded_instance(self):
        """The sort-keys-once rewrite must reproduce the per-round
        ``sorted(remaining)`` tie-break exactly: same keys, same order.
        Checked against an inline reference implementation on a seeded
        random instance (ties included, since gains collide)."""
        import random

        rng = random.Random(42)
        for trial in range(10):
            spans = {}
            for key in range(12):
                start = rng.randrange(0, 900)
                spans[key] = _iv((start, start + rng.randrange(50, 300)))
            universe_pairs = [(0, 1200)]

            picked = greedy_cover(
                IntervalUniverse(_iv(*universe_pairs)), spans, max_picks=6
            )

            # Reference: re-sort the remaining keys every round.
            reference_universe = IntervalUniverse(_iv(*universe_pairs))
            remaining = dict(spans)
            reference = []
            while remaining and len(reference) < 6:
                best_key = None
                best_gain = 0.0
                for key in sorted(remaining):
                    g = reference_universe.gain(remaining[key])
                    if g > best_gain:
                        best_gain = g
                        best_key = key
                if best_key is None:
                    break
                reference_universe.commit(remaining.pop(best_key))
                reference.append(best_key)

            assert picked == tuple(reference), f"trial {trial}"

    def test_point_universe_cover(self):
        universe = PointUniverse([10, 20, 800, 900])
        candidates = {
            "early": _iv((0, 30)),
            "late": _iv((700, 1000)),
            "one": _iv((5, 15)),
        }
        picked = greedy_cover(universe, candidates)
        assert set(picked) == {"early", "late"}
        assert universe.remaining_measure == 0
