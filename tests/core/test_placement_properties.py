"""Property-based invariants of placement and metric computation.

These are the contracts the evaluation pipeline silently relies on:
selections are valid subsets, ConRep groups are genuinely time-connected,
coverage is monotone in the allowed degree, and the metric values respect
their definitional bounds.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CONREP,
    ReplicaGroup,
    UNCONREP,
    evaluate_user,
    is_connected,
    make_policy,
    PlacementContext,
)
from repro.datasets import Activity, ActivityTrace, Dataset
from repro.graph import SocialGraph
from repro.timeline import DAY_SECONDS, IntervalSet

_NUM_FRIENDS = 8


@st.composite
def placement_instances(draw):
    """A star dataset, random schedules, and some profile activity."""
    g = SocialGraph()
    for f in range(1, _NUM_FRIENDS + 1):
        g.add_edge(0, f)
    acts = []
    n_acts = draw(st.integers(min_value=0, max_value=12))
    for _ in range(n_acts):
        acts.append(
            Activity(
                timestamp=draw(
                    st.integers(min_value=0, max_value=DAY_SECONDS - 1)
                ),
                creator=draw(st.integers(min_value=1, max_value=_NUM_FRIENDS)),
                receiver=0,
            )
        )
    dataset = Dataset("t", "facebook", g, ActivityTrace(acts))

    schedules = {}
    for u in range(_NUM_FRIENDS + 1):
        # 0-2 random intervals per user; empty schedules allowed.
        n = draw(st.integers(min_value=0, max_value=2))
        pairs = []
        for _ in range(n):
            start = draw(st.integers(min_value=0, max_value=DAY_SECONDS - 2))
            length = draw(st.integers(min_value=1, max_value=8 * 3600))
            pairs.append((start, min(start + length, DAY_SECONDS)))
        schedules[u] = IntervalSet(pairs, wrap=False)
    return dataset, schedules


@settings(max_examples=40, deadline=None)
@given(
    instance=placement_instances(),
    policy_name=st.sampled_from(["maxav", "mostactive", "random"]),
    mode=st.sampled_from([CONREP, UNCONREP]),
    k=st.integers(min_value=0, max_value=_NUM_FRIENDS + 2),
    seed=st.integers(min_value=0, max_value=100),
)
def test_selection_is_valid_subset(instance, policy_name, mode, k, seed):
    dataset, schedules = instance
    ctx = PlacementContext(
        dataset=dataset,
        schedules=schedules,
        user=0,
        mode=mode,
        rng=random.Random(seed),
    )
    selection = make_policy(policy_name).select(ctx, k)
    assert len(selection) <= k
    assert len(set(selection)) == len(selection)  # no duplicates
    assert set(selection) <= set(dataset.replica_candidates(0))
    assert 0 not in selection  # owner never selects himself


@settings(max_examples=40, deadline=None)
@given(
    instance=placement_instances(),
    policy_name=st.sampled_from(["maxav", "mostactive", "random"]),
    k=st.integers(min_value=0, max_value=_NUM_FRIENDS),
    seed=st.integers(min_value=0, max_value=100),
)
def test_conrep_group_is_connected(instance, policy_name, k, seed):
    """Whatever a policy selects under ConRep must form a time-connected
    group seeded at the owner — unless the owner is never online, in which
    case nothing can be selected at all."""
    dataset, schedules = instance
    ctx = PlacementContext(
        dataset=dataset,
        schedules=schedules,
        user=0,
        mode=CONREP,
        rng=random.Random(seed),
    )
    selection = make_policy(policy_name).select(ctx, k)
    if schedules[0].is_empty:
        assert selection == ()
        return
    group = ReplicaGroup(
        owner=0,
        replicas=selection,
        schedules={m: schedules[m] for m in (0,) + selection},
    )
    assert is_connected(group)


@settings(max_examples=30, deadline=None)
@given(
    instance=placement_instances(),
    policy_name=st.sampled_from(["maxav", "mostactive", "random"]),
    mode=st.sampled_from([CONREP, UNCONREP]),
    seed=st.integers(min_value=0, max_value=100),
)
def test_availability_monotone_in_allowed_degree(
    instance, policy_name, mode, seed
):
    dataset, schedules = instance
    policy = make_policy(policy_name)
    prev = -1.0
    for k in range(_NUM_FRIENDS + 1):
        ctx = PlacementContext(
            dataset=dataset,
            schedules=schedules,
            user=0,
            mode=mode,
            rng=random.Random(seed),
        )
        selection = policy.select(ctx, k)
        m = evaluate_user(dataset, schedules, 0, selection, mode=mode)
        assert m.availability >= prev - 1e-12
        prev = m.availability


@settings(max_examples=40, deadline=None)
@given(
    instance=placement_instances(),
    k=st.integers(min_value=0, max_value=_NUM_FRIENDS),
    seed=st.integers(min_value=0, max_value=100),
)
def test_metric_bounds(instance, k, seed):
    dataset, schedules = instance
    ctx = PlacementContext(
        dataset=dataset,
        schedules=schedules,
        user=0,
        mode=UNCONREP,
        rng=random.Random(seed),
    )
    selection = make_policy("random").select(ctx, k)
    m = evaluate_user(dataset, schedules, 0, selection, mode=UNCONREP)
    assert 0.0 <= m.availability <= 1.0
    assert 0.0 <= m.aod_time <= 1.0 + 1e-12
    assert 0.0 <= m.aod_activity <= 1.0
    assert 0.0 <= m.expected_activity_fraction <= 1.0
    # Availability can never exceed the F2F ceiling (owner + all friends).
    assert m.availability <= m.max_achievable_availability + 1e-12
    # Observed delay never exceeds the actual delay.
    assert m.delay_hours_observed <= m.delay_hours_actual + 1e-12
    assert m.replication_degree == len(selection)
