"""Tests for edge-list I/O round-trips."""

import io
import random

import pytest

from repro.graph import (
    FollowerGraph,
    SocialGraph,
    barabasi_albert,
    read_follower_graph,
    read_friendship_graph,
    write_graph,
)


def test_friendship_roundtrip_via_file(tmp_path):
    g = barabasi_albert(40, 2, random.Random(0))
    path = tmp_path / "graph.txt"
    write_graph(g, path, header="synthetic test graph")
    loaded = read_friendship_graph(path)
    assert sorted(loaded.edges()) == sorted(g.edges())
    assert loaded.num_users == g.num_users


def test_friendship_roundtrip_keeps_isolated_users():
    g = SocialGraph()
    g.add_edge(1, 2)
    g.add_user(99)
    buf = io.StringIO()
    write_graph(g, buf)
    loaded = read_friendship_graph(io.StringIO(buf.getvalue()))
    assert 99 in loaded
    assert loaded.degree(99) == 0


def test_follower_roundtrip():
    g = FollowerGraph()
    g.add_follow(1, 2)
    g.add_follow(3, 2)
    g.add_user(50)
    buf = io.StringIO()
    write_graph(g, buf)
    loaded = read_follower_graph(io.StringIO(buf.getvalue()))
    assert loaded.followers(2) == frozenset({1, 3})
    assert 50 in loaded


def test_reader_skips_comments_blank_lines_and_extra_columns():
    text = "# comment\n\n1 2 1234567890\n2\t3\n"
    g = read_friendship_graph(io.StringIO(text))
    assert g.has_edge(1, 2)
    assert g.has_edge(2, 3)
    assert g.num_edges == 2


def test_reader_skips_self_loops():
    g = read_friendship_graph(io.StringIO("1 1\n1 2\n"))
    assert g.num_edges == 1


def test_reader_rejects_garbage():
    with pytest.raises(ValueError):
        read_friendship_graph(io.StringIO("not numbers\n"))
    with pytest.raises(ValueError):
        read_friendship_graph(io.StringIO("42\n"))


def test_written_header_is_commented(tmp_path):
    g = SocialGraph()
    g.add_edge(1, 2)
    path = tmp_path / "g.txt"
    write_graph(g, path, header="line one\nline two")
    text = path.read_text()
    assert "# line one" in text
    assert "# line two" in text
    assert "undirected" in text
