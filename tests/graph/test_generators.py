"""Tests for the random graph generators."""

import random

import pytest

from repro.graph import (
    barabasi_albert,
    erdos_renyi,
    preferential_follower_graph,
    ring_of_cliques,
)


class TestBarabasiAlbert:
    def test_size_and_edge_count(self):
        g = barabasi_albert(100, 3, random.Random(1))
        assert g.num_users == 100
        # seed clique C(4,2)=6 edges + 3 per each of the 96 arrivals.
        assert g.num_edges == 6 + 3 * 96

    def test_min_degree(self):
        g = barabasi_albert(80, 2, random.Random(7))
        assert all(g.degree(u) >= 2 for u in g.users())

    def test_heavy_tail(self):
        g = barabasi_albert(600, 3, random.Random(3))
        max_deg = max(g.degree(u) for u in g.users())
        # Preferential attachment produces hubs well above the average.
        assert max_deg > 4 * g.average_degree()

    def test_deterministic_under_seed(self):
        a = barabasi_albert(50, 2, random.Random(42))
        b = barabasi_albert(50, 2, random.Random(42))
        assert sorted(a.edges()) == sorted(b.edges())

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            barabasi_albert(5, 0, random.Random(0))
        with pytest.raises(ValueError):
            barabasi_albert(3, 3, random.Random(0))


class TestErdosRenyi:
    def test_extremes(self):
        rng = random.Random(0)
        empty = erdos_renyi(10, 0.0, rng)
        full = erdos_renyi(10, 1.0, rng)
        assert empty.num_edges == 0
        assert full.num_edges == 45

    def test_invalid_prob(self):
        with pytest.raises(ValueError):
            erdos_renyi(10, 1.5, random.Random(0))


class TestPreferentialFollowerGraph:
    def test_size_and_out_degree(self):
        g = preferential_follower_graph(100, 4, random.Random(5))
        assert g.num_users == 100
        # Every non-seed user follows exactly 4 others.
        for u in range(5, 100):
            assert len(g.followees(u)) == 4

    def test_follower_heavy_tail(self):
        g = preferential_follower_graph(600, 4, random.Random(11))
        max_followers = max(g.degree(u) for u in g.users())
        assert max_followers > 3 * g.average_degree()

    def test_deterministic_under_seed(self):
        a = preferential_follower_graph(60, 3, random.Random(9))
        b = preferential_follower_graph(60, 3, random.Random(9))
        assert sorted(a.edges()) == sorted(b.edges())

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            preferential_follower_graph(10, 0, random.Random(0))


class TestRingOfCliques:
    def test_structure(self):
        g = ring_of_cliques(3, 4)
        assert g.num_users == 12
        # 3 cliques of C(4,2)=6 edges + 3 bridges.
        assert g.num_edges == 18 + 3

    def test_single_clique(self):
        g = ring_of_cliques(1, 3)
        assert g.num_users == 3
        assert g.num_edges == 3

    def test_invalid(self):
        with pytest.raises(ValueError):
            ring_of_cliques(0, 3)
        with pytest.raises(ValueError):
            ring_of_cliques(2, 1)


class TestPowerlawDegreeSequence:
    def test_sum_even_and_bounds(self):
        from repro.graph import powerlaw_degree_sequence

        degrees = powerlaw_degree_sequence(500, 2.2, random.Random(1))
        assert sum(degrees) % 2 == 0
        assert all(d >= 1 for d in degrees)

    def test_low_degree_mass(self):
        from repro.graph import powerlaw_degree_sequence

        degrees = powerlaw_degree_sequence(2000, 2.2, random.Random(2))
        # A power law with alpha ~ 2.2 puts most mass at the minimum.
        assert sum(1 for d in degrees if d == 1) > len(degrees) / 3

    def test_invalid_args(self):
        from repro.graph import powerlaw_degree_sequence

        with pytest.raises(ValueError):
            powerlaw_degree_sequence(10, 1.0, random.Random(0))
        with pytest.raises(ValueError):
            powerlaw_degree_sequence(10, 2.0, random.Random(0), min_degree=0)
        with pytest.raises(ValueError):
            powerlaw_degree_sequence(
                10, 2.0, random.Random(0), min_degree=5, max_degree=5
            )


class TestConfigurationGraph:
    def test_realises_degrees_approximately(self):
        from repro.graph import configuration_graph, powerlaw_degree_sequence

        rng = random.Random(3)
        degrees = powerlaw_degree_sequence(800, 2.2, rng)
        g = configuration_graph(degrees, rng)
        assert g.num_users == 800
        # Self-loop/duplicate discards lose only a small fraction of edges.
        assert g.num_edges >= 0.85 * (sum(degrees) / 2)

    def test_contains_low_degree_users(self):
        from repro.graph import configuration_graph, powerlaw_degree_sequence

        rng = random.Random(4)
        g = configuration_graph(powerlaw_degree_sequence(1500, 2.2, rng), rng)
        assert len(g.users_with_degree(1, max_degree=10)) > 100


class TestPowerlawFollowerGraph:
    def test_shape(self):
        from repro.graph import powerlaw_follower_graph

        g = powerlaw_follower_graph(400, 2.0, random.Random(6))
        assert g.num_users == 400
        max_in = max(g.degree(u) for u in g.users())
        assert max_in > 3 * g.average_degree()

    def test_deterministic(self):
        from repro.graph import powerlaw_follower_graph

        a = powerlaw_follower_graph(100, 2.1, random.Random(8))
        b = powerlaw_follower_graph(100, 2.1, random.Random(8))
        assert sorted(a.edges()) == sorted(b.edges())
