"""Properties of the stream-per-user graph layout (repro.graph.stream).

The shard-native pipeline rests on one invariant: any subset of
adjacency rows is a pure function of ``(num_users, alpha, seed,
subset)`` — bit-identical whether built alone, in a tiny window, or as
part of the whole graph.  These tests pin that invariant plus the edge
semantics (symmetrise for facebook, transpose for twitter) against
brute-force recomputation from the raw proposal streams.
"""

import random

import numpy as np
import pytest

from repro.graph.generators import PowerlawSupport, powerlaw_degree_sequence
from repro.graph.stream import (
    graph_stream,
    proposal_rows,
    stream_adjacency,
    stream_follower_graph,
    stream_follower_rows,
    stream_social_graph,
    symmetrized,
    transposed,
    user_proposals,
)

N = 120
ALPHA = 1.35
SEED = 97


def _support():
    return PowerlawSupport(N, ALPHA)


class TestProposalStreams:
    def test_user_proposals_pure_and_sorted(self):
        support = _support()
        for user in (0, 7, N - 1):
            first = user_proposals(N, support, SEED, user)
            again = user_proposals(N, support, SEED, user)
            assert first == again
            assert first == sorted(set(first))
            assert user not in first
            assert all(0 <= v < N for v in first)

    def test_streams_are_independent_of_build_order(self):
        support = _support()
        forward = [user_proposals(N, support, SEED, u) for u in range(N)]
        backward = [
            user_proposals(N, support, SEED, u)
            for u in reversed(range(N))
        ][::-1]
        assert forward == backward

    def test_graph_stream_rejects_non_int_seed(self):
        with pytest.raises(TypeError):
            graph_stream("3", 0)

    def test_graph_stream_distinct_from_other_salts(self):
        # The "graph" salt must not alias the synthesis/schedule streams.
        from repro.seeding import derive_rng

        a = graph_stream(SEED, 5).random()
        b = derive_rng(SEED, "synthesis", 5).random()
        c = derive_rng(SEED, 5).random()
        assert len({a, b, c}) == 3


class TestWindowAndSubsetIdentity:
    def test_window_size_never_changes_rows(self):
        whole = proposal_rows(N, ALPHA, SEED)
        for window in (1, 7, 64, 10_000):
            windowed = proposal_rows(N, ALPHA, SEED, window=window)
            np.testing.assert_array_equal(whole.indptr, windowed.indptr)
            np.testing.assert_array_equal(whole.indices, windowed.indices)

    def test_subset_rows_match_whole_build(self):
        whole = proposal_rows(N, ALPHA, SEED)
        subset = [3, 50, 51, 99, 119]
        partial = proposal_rows(N, ALPHA, SEED, users=subset)
        for user in range(N):
            if user in subset:
                np.testing.assert_array_equal(
                    partial.row(user), whole.row(user)
                )
            else:
                assert partial.degree(user) == 0


class TestEdgeSemantics:
    def test_symmetrized_matches_brute_force(self):
        support = _support()
        rows = proposal_rows(N, ALPHA, SEED)
        adjacency = symmetrized(rows)
        proposals = [
            set(user_proposals(N, support, SEED, u)) for u in range(N)
        ]
        for user in range(N):
            want = sorted(
                v
                for v in range(N)
                if v in proposals[user] or user in proposals[v]
            )
            assert adjacency.row_list(user) == want

    def test_adjacency_halves_the_drawn_target(self):
        # Undirected calibration: stream_adjacency symmetrises proposals
        # drawn with halve_target=True, so the realised mean degree stays
        # on the drawn power-law instead of doubling it.
        support = _support()
        adjacency = stream_adjacency(N, ALPHA, SEED)
        proposals = [
            set(user_proposals(N, support, SEED, u, halve_target=True))
            for u in range(N)
        ]
        for user in range(N):
            want = sorted(
                v
                for v in range(N)
                if v in proposals[user] or user in proposals[v]
            )
            assert adjacency.row_list(user) == want
        full = [len(user_proposals(N, support, SEED, u)) for u in range(N)]
        halved = [len(p) for p in proposals]
        assert sum(halved) < sum(full)
        assert all(h == (f + 1) // 2 for h, f in zip(halved, full))

    def test_transposed_matches_brute_force(self):
        rows = proposal_rows(N, ALPHA, SEED)
        rev = transposed(rows)
        for user in range(N):
            want = sorted(
                v for v in range(N) if user in set(rows.row_list(v))
            )
            assert rev.row_list(user) == want

    def test_transpose_is_an_involution(self):
        rows = proposal_rows(N, ALPHA, SEED)
        twice = transposed(transposed(rows))
        np.testing.assert_array_equal(rows.indptr, twice.indptr)
        np.testing.assert_array_equal(rows.indices, twice.indices)


class TestEagerGraphViews:
    def test_social_graph_matches_adjacency_csr(self):
        adjacency = stream_adjacency(N, ALPHA, SEED)
        graph = stream_social_graph(N, ALPHA, SEED)
        assert graph.num_users == N
        for user in range(N):
            assert sorted(graph.neighbors(user)) == adjacency.row_list(user)

    def test_follower_graph_matches_follower_csr(self):
        followers, followees = stream_follower_rows(N, ALPHA, SEED)
        graph = stream_follower_graph(N, ALPHA, SEED)
        assert graph.num_users == N
        for user in range(N):
            assert sorted(graph.followers(user)) == followers.row_list(user)
            assert sorted(graph.followees(user)) == followees.row_list(user)

    def test_follower_counts_are_the_proposal_counts(self):
        support = _support()
        followers, _ = stream_follower_rows(N, ALPHA, SEED)
        for user in range(N):
            assert followers.degree(user) == len(
                user_proposals(N, support, SEED, user)
            )


class TestPowerlawSupport:
    def test_draw_bounds_and_monotonicity(self):
        support = PowerlawSupport(1000, 1.5)
        assert support.draw(0.0) == support.min_degree
        assert support.draw(1.0 - 1e-12) == support.max_degree
        draws = [support.draw(r) for r in (0.0, 0.3, 0.6, 0.9, 0.999)]
        assert draws == sorted(draws)

    def test_default_max_degree_matches_sequence_generator(self):
        support = PowerlawSupport(1000, 1.5)
        assert support.max_degree == max(2, int(round(1000 ** 0.75)))

    def test_degree_sequence_still_uses_the_shared_support(self):
        # The legacy sequence generator was refactored onto
        # PowerlawSupport; its draws must match manual inverse-CDF draws
        # from the same uniform stream.
        rng = random.Random(11)
        degrees = powerlaw_degree_sequence(50, 1.5, rng)
        support = PowerlawSupport(50, 1.5)
        replay = random.Random(11)
        manual = [support.draw(replay.random()) for _ in range(50)]
        if sum(manual) % 2:
            manual[replay.randrange(50)] += 1
        assert degrees == manual

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerlawSupport(100, 1.0)
        with pytest.raises(ValueError):
            PowerlawSupport(100, 1.5, min_degree=0)
        with pytest.raises(ValueError):
            PowerlawSupport(100, 1.5, min_degree=5, max_degree=5)
