"""Unit tests for SocialGraph and FollowerGraph."""

import pytest

from repro.graph import FollowerGraph, SocialGraph


class TestSocialGraph:
    def test_empty(self):
        g = SocialGraph()
        assert g.num_users == 0
        assert g.num_edges == 0
        assert len(g) == 0
        assert g.average_degree() == 0.0

    def test_add_user_idempotent(self):
        g = SocialGraph()
        g.add_user(1)
        g.add_user(1)
        assert g.num_users == 1
        assert 1 in g

    def test_add_edge_creates_users(self):
        g = SocialGraph()
        g.add_edge(1, 2)
        assert g.num_users == 2
        assert g.num_edges == 1
        assert g.has_edge(1, 2)
        assert g.has_edge(2, 1)

    def test_add_edge_idempotent(self):
        g = SocialGraph()
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        g = SocialGraph()
        with pytest.raises(ValueError):
            g.add_edge(3, 3)

    def test_neighbors_symmetric(self):
        g = SocialGraph()
        g.add_edge(1, 2)
        g.add_edge(1, 3)
        assert g.neighbors(1) == frozenset({2, 3})
        assert g.neighbors(2) == frozenset({1})
        assert g.replica_candidates(1) == g.neighbors(1)

    def test_degree(self):
        g = SocialGraph()
        g.add_edge(1, 2)
        g.add_edge(1, 3)
        g.add_user(9)
        assert g.degree(1) == 2
        assert g.degree(9) == 0

    def test_remove_user(self):
        g = SocialGraph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.remove_user(2)
        assert 2 not in g
        assert g.neighbors(1) == frozenset()
        assert g.num_edges == 0

    def test_degree_histogram(self):
        g = SocialGraph()
        g.add_edge(1, 2)
        g.add_edge(1, 3)
        g.add_user(4)
        assert g.degree_histogram() == {2: 1, 1: 2, 0: 1}

    def test_average_degree(self):
        g = SocialGraph()
        g.add_edge(1, 2)
        assert g.average_degree() == 1.0

    def test_users_with_degree(self):
        g = SocialGraph()
        g.add_edge(1, 2)
        g.add_edge(1, 3)
        assert g.users_with_degree(1) == [2, 3]
        assert g.users_with_degree(2) == [1]
        assert g.users_with_degree(1, max_degree=2) == [1, 2, 3]

    def test_subgraph(self):
        g = SocialGraph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.add_edge(3, 1)
        sub = g.subgraph({1, 2})
        assert sub.num_users == 2
        assert sub.num_edges == 1
        assert sub.has_edge(1, 2)
        assert 3 not in sub

    def test_subgraph_keeps_isolated_members(self):
        g = SocialGraph()
        g.add_edge(1, 2)
        g.add_user(5)
        sub = g.subgraph({1, 5})
        assert 5 in sub
        assert sub.degree(1) == 0

    def test_edges_listed_once(self):
        g = SocialGraph()
        g.add_edge(2, 1)
        g.add_edge(2, 3)
        assert sorted(g.edges()) == [(1, 2), (2, 3)]


class TestFollowerGraph:
    def test_add_follow(self):
        g = FollowerGraph()
        g.add_follow(1, 2)  # 1 follows 2
        assert g.followers(2) == frozenset({1})
        assert g.followees(1) == frozenset({2})
        assert g.followers(1) == frozenset()
        assert g.has_follow(1, 2)
        assert not g.has_follow(2, 1)

    def test_degree_is_follower_count(self):
        g = FollowerGraph()
        g.add_follow(1, 3)
        g.add_follow(2, 3)
        assert g.degree(3) == 2
        assert g.degree(1) == 0
        assert g.replica_candidates(3) == frozenset({1, 2})

    def test_self_follow_rejected(self):
        g = FollowerGraph()
        with pytest.raises(ValueError):
            g.add_follow(1, 1)

    def test_idempotent(self):
        g = FollowerGraph()
        g.add_follow(1, 2)
        g.add_follow(1, 2)
        assert g.num_edges == 1

    def test_remove_user(self):
        g = FollowerGraph()
        g.add_follow(1, 2)
        g.add_follow(2, 3)
        g.remove_user(2)
        assert 2 not in g
        assert g.followers(3) == frozenset()
        assert g.followees(1) == frozenset()

    def test_histogram_and_average(self):
        g = FollowerGraph()
        g.add_follow(1, 3)
        g.add_follow(2, 3)
        assert g.degree_histogram() == {2: 1, 0: 2}
        assert g.average_degree() == pytest.approx(2 / 3)

    def test_subgraph(self):
        g = FollowerGraph()
        g.add_follow(1, 2)
        g.add_follow(3, 2)
        sub = g.subgraph({1, 2})
        assert sub.followers(2) == frozenset({1})
        assert 3 not in sub

    def test_edges_direction(self):
        g = FollowerGraph()
        g.add_follow(7, 9)
        assert list(g.edges()) == [(7, 9)]
