"""Tests for the explicit-session online-time model."""

import io

import pytest

from repro.datasets import ActivityTrace, Dataset
from repro.graph import SocialGraph
from repro.onlinetime import (
    ExplicitScheduleModel,
    load_session_log,
    make_model,
    model_names,
    sessions_to_schedule,
)
from repro.timeline import DAY_SECONDS, HOUR_SECONDS, IntervalSet


def _dataset():
    g = SocialGraph()
    g.add_edge(1, 2)
    return Dataset("t", "facebook", g, ActivityTrace([]))


class TestSessionsToSchedule:
    def test_single_session(self):
        sched = sessions_to_schedule([(3600, 7200)])
        assert sched.intervals == ((3600, 7200),)

    def test_union_of_sessions(self):
        sched = sessions_to_schedule([(0, 100), (50, 200), (5000, 6000)])
        assert sched.measure == 200 + 1000

    def test_absolute_times_project_to_day(self):
        sched = sessions_to_schedule([(DAY_SECONDS + 3600, DAY_SECONDS + 7200)])
        assert sched.contains(4000)

    def test_midnight_wrapping_session(self):
        sched = sessions_to_schedule([(DAY_SECONDS - 100, DAY_SECONDS + 100)])
        assert sched.measure == pytest.approx(200)
        assert sched.contains(0)

    def test_daylong_session_covers_everything(self):
        assert sessions_to_schedule([(0, 2 * DAY_SECONDS)]) == IntervalSet.full_day()

    def test_invalid_session(self):
        with pytest.raises(ValueError):
            sessions_to_schedule([(100, 50)])

    def test_empty(self):
        assert sessions_to_schedule([]).is_empty


class TestExplicitScheduleModel:
    def test_schedule_lookup(self):
        model = ExplicitScheduleModel({1: [(0, 3600)]})
        ds = _dataset()
        assert model.schedule(1, ds, seed=0).measure == 3600
        assert model.schedule(2, ds, seed=0).is_empty

    def test_seed_independent(self):
        model = ExplicitScheduleModel({1: [(0, 3600)]})
        ds = _dataset()
        assert model.schedule(1, ds, 0) == model.schedule(1, ds, 99)

    def test_registered(self):
        assert "explicit" in model_names()
        model = make_model("explicit", sessions={1: [(0, 60)]})
        assert isinstance(model, ExplicitScheduleModel)
        assert "1 users" in model.describe()


class TestLoadSessionLog:
    def test_parse(self):
        text = "# comment\n1 0 3600\n1 7200 10800\n2 100 200\n"
        log = load_session_log(io.StringIO(text))
        assert log == {1: [(0.0, 3600.0), (7200.0, 10800.0)], 2: [(100.0, 200.0)]}

    def test_rejects_short_line(self):
        with pytest.raises(ValueError):
            load_session_log(io.StringIO("1 2\n"))

    def test_rejects_inverted_session(self):
        with pytest.raises(ValueError):
            load_session_log(io.StringIO("1 100 50\n"))

    def test_end_to_end_with_pipeline(self):
        """A session log drives placement exactly like an inferred model."""
        from repro.core import CONREP, PlacementContext, make_policy
        import random

        log = {
            0: [(0, 2 * HOUR_SECONDS)],
            1: [(1 * HOUR_SECONDS, 4 * HOUR_SECONDS)],
            2: [(10 * HOUR_SECONDS, 12 * HOUR_SECONDS)],
        }
        model = ExplicitScheduleModel(log)
        g = SocialGraph()
        g.add_edge(0, 1)
        g.add_edge(0, 2)
        ds = Dataset("t", "facebook", g, ActivityTrace([]))
        schedules = {u: model.schedule(u, ds, 0) for u in (0, 1, 2)}
        ctx = PlacementContext(
            dataset=ds,
            schedules=schedules,
            user=0,
            mode=CONREP,
            rng=random.Random(0),
        )
        picked = make_policy("maxav").select(ctx, 2)
        assert picked == (1,)  # 2 is time-disconnected from the owner
