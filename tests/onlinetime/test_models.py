"""Tests for the three online-time models."""

import pytest

from repro.datasets import Activity, ActivityTrace, Dataset
from repro.graph import SocialGraph
from repro.onlinetime import (
    DEFAULT_SESSION_SECONDS,
    FixedLengthModel,
    RandomLengthModel,
    SporadicModel,
    best_window_start,
    compute_schedules,
    make_model,
    model_names,
    user_rng,
)
from repro.timeline import DAY_SECONDS, HOUR_SECONDS


def _dataset(activities):
    """Minimal two-user facebook dataset carrying the given activities."""
    g = SocialGraph()
    g.add_edge(1, 2)
    return Dataset("t", "facebook", g, ActivityTrace(activities))


def _act(t, creator=1, receiver=2):
    return Activity(timestamp=t, creator=creator, receiver=receiver)


class TestUserRng:
    def test_stable_per_user(self):
        assert user_rng(7, 1).random() == user_rng(7, 1).random()

    def test_differs_across_users_and_seeds(self):
        assert user_rng(7, 1).random() != user_rng(7, 2).random()
        assert user_rng(7, 1).random() != user_rng(8, 1).random()


class TestSporadic:
    def test_activity_instant_inside_session(self):
        ds = _dataset([_act(3 * HOUR_SECONDS)])
        model = SporadicModel()
        for seed in range(20):
            sched = model.schedule(1, ds, seed)
            assert sched.contains(3 * HOUR_SECONDS)
            assert sched.measure == DEFAULT_SESSION_SECONDS

    def test_sessions_union(self):
        # Two far-apart activities -> two disjoint sessions.
        ds = _dataset([_act(2 * HOUR_SECONDS), _act(14 * HOUR_SECONDS)])
        sched = SporadicModel().schedule(1, ds, 0)
        assert sched.measure == 2 * DEFAULT_SESSION_SECONDS

    def test_overlapping_sessions_merge(self):
        ds = _dataset([_act(3600), _act(3660)])  # one minute apart
        sched = SporadicModel().schedule(1, ds, 0)
        assert sched.measure < 2 * DEFAULT_SESSION_SECONDS

    def test_no_activity_means_never_online(self):
        ds = _dataset([_act(100, creator=1)])
        assert SporadicModel().schedule(2, ds, 0).is_empty

    def test_session_wrapping_midnight(self):
        ds = _dataset([_act(10)])  # just after midnight
        sched = SporadicModel(3600).schedule(1, ds, 0)
        assert sched.measure == pytest.approx(3600)
        assert sched.contains(10)

    def test_negative_start_wraps_past_midnight(self):
        # Regression: an activity just after midnight with a random offset
        # larger than its second-of-day gives a *negative* session start
        # (act.second_of_day - offset < 0).  IntervalSet must wrap that
        # session around midnight, keeping the full length and covering
        # both the end of the previous day and the start of this one.
        length = 3600.0
        ds = _dataset([_act(10)])
        wrapped = 0
        for seed in range(50):
            sched = SporadicModel(length).schedule(1, ds, seed)
            offset = user_rng(seed, 1).random() * length
            assert sched.measure == pytest.approx(length)
            assert sched.contains(10)
            if offset > 10:  # start was negative
                wrapped += 1
                start = (10 - offset) % DAY_SECONDS
                assert sched.contains(start + 1)  # tail of previous day
                assert sched.contains(0)  # midnight itself is covered
                assert not sched.contains(start - 1)
        assert wrapped > 0  # the regression path was actually exercised

    def test_custom_session_length(self):
        ds = _dataset([_act(7 * HOUR_SECONDS)])
        sched = SporadicModel(100).schedule(1, ds, 0)
        assert sched.measure == 100

    def test_multi_day_activities_project_to_one_day(self):
        ds = _dataset([_act(3600), _act(DAY_SECONDS + 3600)])
        sched = SporadicModel().schedule(1, ds, 0)
        # Both activities are at 01:00 of their day; sessions overlap there.
        assert sched.measure < 2 * DEFAULT_SESSION_SECONDS

    def test_validation(self):
        with pytest.raises(ValueError):
            SporadicModel(0)
        with pytest.raises(ValueError):
            SporadicModel(DAY_SECONDS + 1)

    def test_deterministic_per_seed(self):
        ds = _dataset([_act(5000), _act(60000)])
        model = SporadicModel()
        assert model.schedule(1, ds, 3) == model.schedule(1, ds, 3)
        assert model.schedule(1, ds, 3) != model.schedule(1, ds, 4)


class TestBestWindowStart:
    def test_covers_cluster(self):
        instants = [100, 200, 300, 50000]
        start = best_window_start(instants, 1000)
        assert start == 100  # anchored at first point of the dense cluster

    def test_circular_cluster_across_midnight(self):
        instants = [DAY_SECONDS - 100, DAY_SECONDS - 50, 20, 40000]
        start = best_window_start(instants, 300)
        window_points = [
            p
            for p in instants
            if (p - start) % DAY_SECONDS <= 300
        ]
        assert len(window_points) == 3

    def test_empty_falls_back_to_evening(self):
        start = best_window_start([], 2 * HOUR_SECONDS)
        assert start == 19 * HOUR_SECONDS  # 20:00 centre - 1h

    def test_single_instant(self):
        assert best_window_start([42.0], 100) == 42.0


class TestFixedLength:
    def test_measure_is_window_length(self):
        ds = _dataset([_act(10 * HOUR_SECONDS)])
        for hours in (2, 4, 6, 8):
            sched = FixedLengthModel(hours).schedule(1, ds, 0)
            assert sched.measure == hours * HOUR_SECONDS

    def test_window_covers_activity_majority(self):
        acts = [_act(14 * HOUR_SECONDS + i * 60) for i in range(10)]
        acts.append(_act(2 * HOUR_SECONDS))
        sched = FixedLengthModel(2).schedule(1, _dataset(acts), 0)
        assert sched.contains(14 * HOUR_SECONDS + 5 * 60)
        assert not sched.contains(2 * HOUR_SECONDS)

    def test_deterministic_no_seed_effect(self):
        ds = _dataset([_act(3600 * i) for i in range(1, 6)])
        model = FixedLengthModel(4)
        assert model.schedule(1, ds, 0) == model.schedule(1, ds, 99)

    def test_24h_window_is_full_day(self):
        ds = _dataset([_act(100)])
        assert FixedLengthModel(24).schedule(1, ds, 0).measure == DAY_SECONDS

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedLengthModel(0)
        with pytest.raises(ValueError):
            FixedLengthModel(25)

    def test_name_carries_hours(self):
        assert FixedLengthModel(2).name == "fixedlength-2h"


class TestRandomLength:
    def test_length_in_range(self):
        ds = _dataset([_act(10 * HOUR_SECONDS)])
        model = RandomLengthModel()
        for seed in range(10):
            sched = model.schedule(1, ds, seed)
            assert 2 * HOUR_SECONDS <= sched.measure <= 8 * HOUR_SECONDS

    def test_lengths_vary_across_users(self):
        acts = [_act(3600, creator=1), _act(3600, creator=2, receiver=1)]
        ds = _dataset(acts)
        m = RandomLengthModel()
        lengths = {m.schedule(u, ds, 0).measure for u in (1, 2)}
        assert len(lengths) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomLengthModel(0, 8)
        with pytest.raises(ValueError):
            RandomLengthModel(9, 8)


class TestRegistry:
    def test_names(self):
        assert model_names() == [
            "explicit",
            "fixedlength",
            "randomlength",
            "sporadic",
        ]

    def test_make_model_with_kwargs(self):
        model = make_model("fixedlength", hours=2)
        assert isinstance(model, FixedLengthModel)
        assert model.hours == 2
        assert isinstance(make_model("SPORADIC"), SporadicModel)

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            make_model("diurnal")

    def test_describe(self):
        assert "2" in make_model("fixedlength", hours=2).describe()
        assert "sporadic" in make_model("sporadic").describe()
        assert "randomlength" in make_model("randomlength").describe()


class TestComputeSchedules:
    def test_covers_all_users(self):
        acts = [_act(3600 + i, creator=1) for i in range(3)]
        ds = _dataset(acts)
        schedules = compute_schedules(ds, SporadicModel(), seed=0)
        assert set(schedules) == {1, 2}
        assert schedules[2].is_empty

    def test_memoised_per_model_config_and_seed(self):
        ds = _dataset([_act(3600, creator=1)])
        first = compute_schedules(ds, SporadicModel(), seed=0)
        # Same config + seed returns the cached dict, even for a distinct
        # (but equivalent) model instance.
        assert compute_schedules(ds, SporadicModel(), seed=0) is first
        assert compute_schedules(ds, SporadicModel(), seed=1) is not first
        assert compute_schedules(ds, SporadicModel(600), seed=0) is not first
        assert compute_schedules(ds, FixedLengthModel(2), seed=0) is not first

    def test_cache_can_be_cleared(self):
        from repro.onlinetime import clear_schedule_cache

        ds = _dataset([_act(3600, creator=1)])
        first = compute_schedules(ds, SporadicModel(), seed=0)
        clear_schedule_cache(ds)
        fresh = compute_schedules(ds, SporadicModel(), seed=0)
        assert fresh is not first
        assert fresh == first  # same contents, recomputed


class TestPackedSchedules:
    def test_memoised_per_model_config_and_seed(self):
        from repro.onlinetime import packed_schedules

        ds = _dataset([_act(3600, creator=1)])
        first = packed_schedules(ds, SporadicModel(), seed=0)
        assert packed_schedules(ds, SporadicModel(), seed=0) is first
        assert packed_schedules(ds, SporadicModel(), seed=1) is not first
        assert packed_schedules(ds, SporadicModel(600), seed=0) is not first

    def test_matches_ad_hoc_packing(self):
        from repro.onlinetime import packed_schedules
        from repro.timeline.packed import PackedSchedules

        ds = _dataset([_act(3600 + i, creator=1) for i in range(4)])
        schedules = compute_schedules(ds, SporadicModel(), seed=2)
        memoised = packed_schedules(ds, SporadicModel(), seed=2)
        ad_hoc = PackedSchedules.from_schedules(schedules)
        for user in schedules:
            for mine, theirs in zip(
                memoised.row_slice(user), ad_hoc.row_slice(user)
            ):
                assert mine.tolist() == theirs.tolist()

    def test_clear_drops_both_memos(self):
        from repro.onlinetime import clear_schedule_cache, packed_schedules

        ds = _dataset([_act(3600, creator=1)])
        schedules = compute_schedules(ds, SporadicModel(), seed=0)
        packed = packed_schedules(ds, SporadicModel(), seed=0)
        clear_schedule_cache(ds)
        assert compute_schedules(ds, SporadicModel(), seed=0) is not schedules
        assert packed_schedules(ds, SporadicModel(), seed=0) is not packed
