"""Shard-granular sweep checkpoints and the journal v2 ledger.

The mid-sweep resume contract: a sweep resumed from on-disk checkpoints
aggregates the identical floats an uninterrupted run would; any torn,
corrupt or mismatched checkpoint reads as "not done" and the shard
recomputes — resume never trades correctness for speed.
"""

import json

import pytest

from repro.cache import SweepCache
from repro.core import CONREP, make_policy, sweep_replication_degree
from repro.datasets import synthetic_facebook
from repro.experiments import BatchJournal, JOURNAL_FORMAT_VERSION, run_batch
from repro.experiments.checkpoint import SweepCheckpoint
from repro.onlinetime import SporadicModel
from tests.experiments.test_config_and_registry import TINY


def _dataset():
    return synthetic_facebook(200, seed=3)


def _cohort(dataset, n=8):
    ranked = sorted(
        dataset.graph.users(), key=lambda u: (dataset.graph.degree(u), u)
    )
    return ranked[-n:]


def _sweep(cache, **overrides):
    ds = _dataset()
    kwargs = dict(
        mode=CONREP,
        degrees=[0, 1, 2],
        users=_cohort(ds),
        seed=1,
        repeats=2,
        shards=4,
        cache=cache,
    )
    kwargs.update(overrides)
    return sweep_replication_degree(
        ds,
        SporadicModel(),
        [make_policy(n) for n in ("maxav", "random")],
        **kwargs,
    )


def _checkpointed_cache(directory, journal=None):
    cache = SweepCache()
    cache.checkpoint = SweepCheckpoint(directory, journal=journal)
    return cache


class TestJournalV2:
    def test_checkpoints_round_trip_through_the_journal(self, tmp_path):
        path = tmp_path / "journal.json"
        journal = BatchJournal.open(path, scale="tiny", ids=["a"])
        journal.mark_checkpoint("key.r0.s0")
        journal.mark_checkpoint("key.r0.s1")
        journal.mark_checkpoint("key.r0.s0")  # idempotent
        assert journal.has_checkpoint("key.r0.s0")
        assert not journal.has_checkpoint("key.r1.s0")
        blob = json.loads(path.read_text())
        assert blob["format_version"] == JOURNAL_FORMAT_VERSION
        assert blob["checkpoints"] == ["key.r0.s0", "key.r0.s1"]
        resumed = BatchJournal.open(
            path, scale="tiny", ids=["a"], resume=True
        )
        assert resumed.has_checkpoint("key.r0.s1")

    def test_v1_journal_accepted_on_resume(self, tmp_path):
        # Journals written before the checkpoints ledger still resume;
        # they simply carry no checkpoints.
        path = tmp_path / "journal.json"
        path.write_text(
            json.dumps(
                {
                    "format_version": 1,
                    "scale": "tiny",
                    "experiments": {"a": "done"},
                }
            )
        )
        journal = BatchJournal.open(
            path, scale="tiny", ids=["a"], resume=True
        )
        assert journal.status("a") == "done"
        assert journal.checkpoints == []
        # And it is rewritten as v2.
        assert (
            json.loads(path.read_text())["format_version"]
            == JOURNAL_FORMAT_VERSION
        )

    def test_sigkill_mid_write_leaves_the_last_good_state(self, tmp_path):
        # Journal writes are tmp+os.replace: a SIGKILL mid-write leaves
        # the fully-written previous journal plus (at worst) a torn .tmp
        # beside it.  Resume reads the last-good state and the next
        # write atomically replaces it; the torn tmp is never consulted.
        path = tmp_path / "journal.json"
        journal = BatchJournal.open(path, scale="tiny", ids=["a", "b"])
        journal.mark("a", "done")
        journal.mark_checkpoint("key.r0.s0")
        torn = path.with_name(path.name + ".tmp")
        torn.write_text('{"format_version": 2, "scale": "ti', "utf-8")
        resumed = BatchJournal.open(
            path, scale="tiny", ids=["a", "b"], resume=True
        )
        assert resumed.status("a") == "done"
        assert resumed.status("b") == "pending"
        assert resumed.has_checkpoint("key.r0.s0")
        # The fresh open rewrote the journal through the same tmp path,
        # clobbering the torn remnant.
        blob = json.loads(path.read_text())
        assert blob["experiments"] == {"a": "done", "b": "pending"}

    def test_malformed_checkpoints_ledger_rejected(self, tmp_path):
        path = tmp_path / "journal.json"
        path.write_text(
            json.dumps(
                {
                    "format_version": JOURNAL_FORMAT_VERSION,
                    "scale": "tiny",
                    "experiments": {},
                    "checkpoints": [1, 2],
                }
            )
        )
        with pytest.raises(ValueError, match="checkpoints"):
            BatchJournal.open(path, scale="tiny", ids=["a"], resume=True)


class TestSweepCheckpointStoreLoad:
    def _fixture(self, tmp_path):
        checkpoint = SweepCheckpoint(tmp_path)
        ds = _dataset()
        users = _cohort(ds)
        key = checkpoint.key_for(
            ds,
            SporadicModel(),
            [make_policy("maxav"), make_policy("random")],
            mode=CONREP,
            degrees=[0, 1, 2],
            users=users,
            seed=1,
            repeats=2,
        )
        return checkpoint, key, users

    def test_key_covers_the_policy_set(self, tmp_path):
        checkpoint, key, users = self._fixture(tmp_path)
        other = checkpoint.key_for(
            _dataset(),
            SporadicModel(),
            [make_policy("maxav")],  # different policy set
            mode=CONREP,
            degrees=[0, 1, 2],
            users=users,
            seed=1,
            repeats=2,
        )
        assert key != other

    def test_round_trip_is_bit_identical(self, tmp_path):
        from repro.onlinetime import compute_schedules
        from repro.parallel import SweepPayload, evaluate_users_chunk

        checkpoint, key, users = self._fixture(tmp_path)
        ds = _dataset()
        schedules = compute_schedules(ds, SporadicModel(), seed=1)
        payload = SweepPayload(
            dataset=ds,
            schedules=schedules,
            policies=(make_policy("maxav"), make_policy("random")),
            mode=CONREP,
            degrees=(0, 1, 2),
            max_degree=2,
            seed=1,
        )
        cells = evaluate_users_chunk(payload, users[:3])
        checkpoint.store(key, 0, 0, users[:3], cells)
        assert checkpoint.stats()["stores"] == 1
        loaded = checkpoint.load(key, 0, 0, users=users[:3])
        assert loaded == cells  # UserMetrics dataclass equality, exact
        # Wrong repeat/shard/cohort all miss.
        assert checkpoint.load(key, 1, 0, users=users[:3]) is None
        assert checkpoint.load(key, 0, 1, users=users[:3]) is None
        assert checkpoint.load(key, 0, 0, users=users[:4]) is None

    def test_corrupt_checkpoint_reads_as_not_done(self, tmp_path):
        checkpoint, key, users = self._fixture(tmp_path)
        path = checkpoint._path(key, 0, 0)
        checkpoint.store(key, 0, 0, users[:2], [{}, {}])
        blob = path.read_text()
        path.write_text(blob[: len(blob) // 2])  # torn
        assert checkpoint.load(key, 0, 0, users=users[:2]) is None
        assert checkpoint.stats()["stale"] == 1
        # A key echo mismatch also misses.
        checkpoint.store(key, 0, 1, users[:2], [{}, {}])
        shard_path = checkpoint._path(key, 0, 1)
        wrong = json.loads(shard_path.read_text())
        wrong["key"] = "someone-else"
        shard_path.write_text(json.dumps(wrong))
        assert checkpoint.load(key, 0, 1, users=users[:2]) is None

    def test_unwritable_directory_disables_silently(self, tmp_path):
        import shutil

        checkpoint = SweepCheckpoint(tmp_path / "ck")
        shutil.rmtree(tmp_path / "ck")
        checkpoint.store("k", 0, 0, [1], [{}])  # must not raise
        assert checkpoint.stats()["stores"] == 0


class TestMidSweepResume:
    def test_checkpointed_sweep_equals_plain_sweep(self, tmp_path):
        plain = _sweep(SweepCache())
        checkpointed = _sweep(_checkpointed_cache(tmp_path))
        assert checkpointed == plain

    def test_resume_loads_shards_and_stays_bit_identical(self, tmp_path):
        first_cache = _checkpointed_cache(tmp_path)
        first = _sweep(first_cache)
        stored = first_cache.checkpoint.stats()["stores"]
        assert stored == 8  # 2 repeats x 4 shards
        # A fresh cache (cold memory) over the same checkpoint dir:
        # every shard loads, nothing recomputes, floats identical.
        second_cache = _checkpointed_cache(tmp_path)
        second = _sweep(second_cache)
        assert second == first
        stats = second_cache.checkpoint.stats()
        assert stats["loads"] == 8
        assert stats["stores"] == 0

    def test_partial_checkpoints_resume_mid_sweep(self, tmp_path):
        first_cache = _checkpointed_cache(tmp_path)
        first = _sweep(first_cache)
        # Simulate a run killed mid-sweep: delete half the shard files.
        shard_files = sorted(tmp_path.glob("*.shard.json"))
        assert len(shard_files) == 8
        for path in shard_files[4:]:
            path.unlink()
        resumed_cache = _checkpointed_cache(tmp_path)
        resumed = _sweep(resumed_cache)
        assert resumed == first
        stats = resumed_cache.checkpoint.stats()
        assert stats["loads"] == 4
        assert stats["stores"] == 4  # the missing half was recomputed

    def test_checkpoints_are_execution_knob_independent(self, tmp_path):
        # Checkpoints written by a 4-shard run serve... only a 4-shard
        # run of the same sweep (the shard slice is part of the
        # identity), but engine/backend don't fragment them.
        first_cache = _checkpointed_cache(tmp_path)
        first = _sweep(first_cache, shards=4)
        other_cache = _checkpointed_cache(tmp_path)
        other = _sweep(other_cache, shards=4, engine="naive")
        assert other == first
        assert other_cache.checkpoint.stats()["loads"] == 8

    def test_run_batch_wires_checkpoints_into_the_journal(self, tmp_path):
        run_batch(tmp_path, scale=TINY, ids=["fig3"])
        blob = json.loads((tmp_path / "journal.json").read_text())
        assert blob["format_version"] == JOURNAL_FORMAT_VERSION
        assert blob["checkpoints"]
        shard_files = list((tmp_path / "checkpoints").glob("*.shard.json"))
        assert len(shard_files) == len(blob["checkpoints"])
        # Resume with lost outputs: the sweep serves from checkpoints.
        (tmp_path / "fig3.json").unlink()
        (tmp_path / "fig3.txt").unlink()
        run_batch(tmp_path, scale=TINY, ids=["fig3"], resume=True)
        summary = json.loads((tmp_path / "batch_summary.json").read_text())
        assert summary["checkpoints"]["loads"] == len(shard_files)
        assert summary["checkpoints"]["stores"] == 0
