"""Tests for batch running and JSON serialisation."""

import json
import math

import pytest

from repro.experiments import jsonify, result_to_dict, run_batch
from repro.experiments.report import ExperimentResult
from tests.experiments.test_config_and_registry import TINY


class TestJsonify:
    def test_primitives(self):
        assert jsonify(5) == 5
        assert jsonify("x") == "x"
        assert jsonify(None) is None
        assert jsonify(1.5) == 1.5
        assert jsonify(True) is True

    def test_non_finite_floats_become_strings(self):
        assert jsonify(math.inf) == "inf"
        assert jsonify(-math.inf) == "-inf"
        assert jsonify(math.nan) == "nan"

    def test_containers(self):
        assert jsonify((1, 2)) == [1, 2]
        assert jsonify({1: (2, 3)}) == {"1": [2, 3]}

    def test_dataclass(self):
        from repro.core.fairness import FairnessReport

        report = FairnessReport(
            num_hosts=2,
            total_load=3,
            mean_load=1.5,
            max_load=2,
            jain=0.9,
            gini=0.1,
            top_decile_share=0.6,
        )
        out = jsonify(report)
        assert out["num_hosts"] == 2
        assert out["jain"] == 0.9

    def test_fallback_repr(self):
        class Odd:
            def __repr__(self):
                return "<odd>"

        assert jsonify(Odd()) == "<odd>"


class TestResultToDict:
    def test_round_trips_through_json(self):
        result = ExperimentResult("idx", "T", "D", paper_expectation="E")
        result.add_table("cap", ("a", "b"), [(1, math.inf)])
        result.data["series"] = [1.0, 2.0]
        blob = json.dumps(result_to_dict(result))
        parsed = json.loads(blob)
        assert parsed["experiment_id"] == "idx"
        assert parsed["tables"][0]["rows"][0] == [1, "inf"]
        assert parsed["data"]["series"] == [1.0, 2.0]


class TestRunBatch:
    def test_writes_txt_and_json(self, tmp_path):
        written = run_batch(tmp_path, scale=TINY, ids=["table1", "x1"])
        names = sorted(p.name for p in written)
        assert names == ["table1.json", "table1.txt", "x1.json", "x1.txt"]
        parsed = json.loads((tmp_path / "x1.json").read_text())
        assert parsed["experiment_id"] == "x1"
        assert "DES" in (tmp_path / "x1.txt").read_text()

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "deep" / "dir"
        run_batch(target, scale=TINY, ids=["table1"])
        assert (target / "table1.txt").exists()
