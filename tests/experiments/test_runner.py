"""Tests for batch running and JSON serialisation."""

import json
import math

import pytest

from repro.cache import SweepCache
from repro.experiments import (
    dejsonify,
    jsonify,
    load_result,
    render_batch_summary,
    result_to_dict,
    run_batch,
)
from repro.experiments.report import ExperimentResult
from tests.experiments.test_config_and_registry import TINY


class TestJsonify:
    def test_primitives(self):
        assert jsonify(5) == 5
        assert jsonify("x") == "x"
        assert jsonify(None) is None
        assert jsonify(1.5) == 1.5
        assert jsonify(True) is True

    def test_non_finite_floats_become_strings(self):
        assert jsonify(math.inf) == "inf"
        assert jsonify(-math.inf) == "-inf"
        assert jsonify(math.nan) == "nan"

    def test_containers(self):
        assert jsonify((1, 2)) == [1, 2]
        assert jsonify({1: (2, 3)}) == {"1": [2, 3]}

    def test_dataclass(self):
        from repro.core.fairness import FairnessReport

        report = FairnessReport(
            num_hosts=2,
            total_load=3,
            mean_load=1.5,
            max_load=2,
            jain=0.9,
            gini=0.1,
            top_decile_share=0.6,
        )
        out = jsonify(report)
        assert out["num_hosts"] == 2
        assert out["jain"] == 0.9

    def test_fallback_repr(self):
        class Odd:
            def __repr__(self):
                return "<odd>"

        assert jsonify(Odd()) == "<odd>"


class TestDejsonify:
    def test_inverts_non_finite_encoding(self):
        assert dejsonify("inf") == math.inf
        assert dejsonify("-inf") == -math.inf
        assert math.isnan(dejsonify("nan"))

    def test_other_strings_untouched(self):
        assert dejsonify("infinite") == "infinite"
        assert dejsonify("Inf") == "Inf"  # exact-match only
        assert dejsonify("") == ""

    def test_recurses_containers(self):
        out = dejsonify({"a": [1.5, "inf", {"b": "-inf"}], "c": None})
        assert out["a"][0] == 1.5
        assert out["a"][1] == math.inf
        assert out["a"][2]["b"] == -math.inf
        assert out["c"] is None

    def test_round_trips_jsonify(self):
        value = {"x": [1, math.inf, -math.inf], "y": 2.5, "z": "plain"}
        assert dejsonify(json.loads(json.dumps(jsonify(value)))) == value


class TestResultToDict:
    def test_round_trips_through_json(self):
        result = ExperimentResult("idx", "T", "D", paper_expectation="E")
        result.add_table("cap", ("a", "b"), [(1, math.inf)])
        result.data["series"] = [1.0, 2.0]
        blob = json.dumps(result_to_dict(result))
        parsed = json.loads(blob)
        assert parsed["experiment_id"] == "idx"
        assert parsed["tables"][0]["rows"][0] == [1, "inf"]
        assert parsed["data"]["series"] == [1.0, 2.0]


class TestRunBatch:
    def test_writes_txt_and_json(self, tmp_path):
        written = run_batch(tmp_path, scale=TINY, ids=["table1", "x1"])
        names = sorted(p.name for p in written)
        assert names == [
            "batch_summary.json",
            "table1.json",
            "table1.txt",
            "x1.json",
            "x1.txt",
        ]
        parsed = json.loads((tmp_path / "x1.json").read_text())
        assert parsed["experiment_id"] == "x1"
        assert "DES" in (tmp_path / "x1.txt").read_text()

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "deep" / "dir"
        run_batch(target, scale=TINY, ids=["table1"])
        assert (target / "table1.txt").exists()

    def test_load_result_restores_non_finite_floats(self, tmp_path):
        # Infinite delays are written by jsonify as the string "inf";
        # load_result must hand back the float.
        result = ExperimentResult("idx", "T", "D", paper_expectation="E")
        result.add_table("cap", ("a", "b"), [(1, math.inf)])
        result.data["delays"] = [2.5, math.inf, -math.inf]
        path = tmp_path / "idx.json"
        path.write_text(json.dumps(result_to_dict(result)))
        loaded = load_result(path)
        assert loaded["tables"][0]["rows"][0] == [1, math.inf]
        assert loaded["data"]["delays"] == [2.5, math.inf, -math.inf]
        assert not _contains(loaded, "inf")

    def test_load_result_includes_timings(self, tmp_path):
        run_batch(tmp_path, scale=TINY, ids=["table1"], jobs=1)
        loaded = load_result(tmp_path / "table1.json")
        timings = loaded["timings"]
        assert timings["jobs"] == 1
        assert timings["total_seconds"] > 0
        assert all(
            set(phase) == {"seconds", "items", "calls", "items_per_second"}
            for phase in timings["phases"].values()
        )

    def test_atomic_writes_leave_no_temp_files(self, tmp_path):
        run_batch(tmp_path, scale=TINY, ids=["fig3"])
        assert not list(tmp_path.glob("*.tmp"))
        assert (tmp_path / "fig3.json").exists()

    def test_batch_summary_contents(self, tmp_path):
        run_batch(tmp_path, scale=TINY, ids=["fig3", "fig5"])
        summary = json.loads((tmp_path / "batch_summary.json").read_text())
        assert summary["num_experiments"] == 2
        assert summary["scale"] == TINY.name
        assert set(summary["experiments"]) == {"fig3", "fig5"}
        # fig5 is a view over fig3's sweep: the batch-shared cache must
        # have served it entirely from memory.
        assert summary["cache"]["hits"] >= 12
        assert summary["cache"]["entries"] == summary["cache"]["stores"]
        fig5 = summary["experiments"]["fig5"]
        assert fig5["cache"]["misses"] == 0
        assert summary["pool"] == {  # jobs=1: no pool activity at all
            "starts": 0,
            "reuses": 0,
            "rebuilds": 0,
            "retries": 0,
            "timeouts": 0,
            "quarantined": 0,
        }
        assert summary["failures"] is None
        assert summary["skipped"] == []
        assert "sweep[sporadic]" in summary["phase_totals"]

    def test_no_cache_batch_is_identical(self, tmp_path):
        run_batch(tmp_path / "cached", scale=TINY, ids=["fig5"])
        run_batch(
            tmp_path / "plain", scale=TINY, ids=["fig5"], use_cache=False
        )
        cached = load_result(tmp_path / "cached" / "fig5.json")
        plain = load_result(tmp_path / "plain" / "fig5.json")
        cached.pop("timings")
        plain.pop("timings")
        assert cached == plain
        summary = json.loads(
            (tmp_path / "plain" / "batch_summary.json").read_text()
        )
        assert summary["cache"] is None

    def test_shared_cache_spans_batches(self, tmp_path):
        cache = SweepCache()
        run_batch(tmp_path / "one", scale=TINY, ids=["fig3"], cache=cache)
        mark = cache.stats.snapshot()
        run_batch(tmp_path / "two", scale=TINY, ids=["fig3"], cache=cache)
        assert cache.stats.since(mark)["misses"] == 0
        one = load_result(tmp_path / "one" / "fig3.json")
        two = load_result(tmp_path / "two" / "fig3.json")
        one.pop("timings")
        two.pop("timings")
        assert one == two

    def test_render_batch_summary_foot(self, tmp_path):
        run_batch(tmp_path, scale=TINY, ids=["fig3"])
        summary = json.loads((tmp_path / "batch_summary.json").read_text())
        foot = render_batch_summary(summary)
        assert "[batch] 1 experiments" in foot
        assert "cache:" in foot
        assert "fig3:" in foot


def _contains(value, needle):
    if isinstance(value, dict):
        return any(_contains(v, needle) for v in value.values())
    if isinstance(value, list):
        return any(_contains(v, needle) for v in value)
    return value == needle
