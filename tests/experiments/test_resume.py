"""Tests for the batch journal and --resume semantics."""

import json

import pytest

from repro.experiments import (
    BatchJournal,
    DONE,
    FAILED,
    JOURNAL_FORMAT_VERSION,
    PENDING,
    RUNNING,
    load_result,
    run_batch,
)
from repro.experiments.figures import EXPERIMENTS
from tests.experiments.test_config_and_registry import TINY


class TestBatchJournal:
    def test_fresh_journal_is_all_pending(self, tmp_path):
        path = tmp_path / "journal.json"
        journal = BatchJournal.open(path, scale="tiny", ids=["a", "b"])
        assert journal.statuses == {"a": PENDING, "b": PENDING}
        blob = json.loads(path.read_text())
        assert blob["format_version"] == JOURNAL_FORMAT_VERSION
        assert blob["scale"] == "tiny"
        assert blob["experiments"] == {"a": PENDING, "b": PENDING}

    def test_mark_persists_atomically(self, tmp_path):
        path = tmp_path / "journal.json"
        journal = BatchJournal.open(path, scale="tiny", ids=["a"])
        journal.mark("a", DONE)
        assert json.loads(path.read_text())["experiments"]["a"] == DONE
        assert not list(tmp_path.glob("*.tmp"))
        assert journal.done_ids() == ["a"]

    def test_mark_rejects_unknown_status(self, tmp_path):
        journal = BatchJournal.open(
            tmp_path / "journal.json", scale="tiny", ids=["a"]
        )
        with pytest.raises(ValueError):
            journal.mark("a", "exploded")

    def test_resume_keeps_done_and_demotes_running(self, tmp_path):
        path = tmp_path / "journal.json"
        journal = BatchJournal.open(path, scale="tiny", ids=["a", "b", "c"])
        journal.mark("a", DONE)
        journal.mark("b", RUNNING)  # the run dies here
        resumed = BatchJournal.open(
            path, scale="tiny", ids=["a", "b", "c", "d"], resume=True
        )
        assert resumed.statuses == {
            "a": DONE,
            "b": FAILED,  # died mid-experiment: outputs are suspect
            "c": PENDING,
            "d": PENDING,  # newly requested id
        }

    def test_resume_rejects_scale_mismatch(self, tmp_path):
        path = tmp_path / "journal.json"
        BatchJournal.open(path, scale="tiny", ids=["a"])
        with pytest.raises(ValueError, match="scale"):
            BatchJournal.open(path, scale="full", ids=["a"], resume=True)

    def test_resume_rejects_format_mismatch(self, tmp_path):
        path = tmp_path / "journal.json"
        path.write_text(
            json.dumps(
                {"format_version": 999, "scale": "tiny", "experiments": {}}
            )
        )
        with pytest.raises(ValueError, match="format_version"):
            BatchJournal.open(path, scale="tiny", ids=["a"], resume=True)

    def test_without_resume_existing_journal_is_reset(self, tmp_path):
        path = tmp_path / "journal.json"
        journal = BatchJournal.open(path, scale="tiny", ids=["a"])
        journal.mark("a", DONE)
        fresh = BatchJournal.open(path, scale="tiny", ids=["a"])
        assert fresh.statuses == {"a": PENDING}


class TestRunBatchJournal:
    def test_journal_written_and_all_done(self, tmp_path):
        run_batch(tmp_path, scale=TINY, ids=["table1", "x1"])
        blob = json.loads((tmp_path / "journal.json").read_text())
        assert blob["experiments"] == {"table1": DONE, "x1": DONE}

    def test_failure_marks_journal_and_writes_summary(self, tmp_path):
        # 'nope' is rejected by run_experiment after table1 completes.
        with pytest.raises(ValueError):
            run_batch(tmp_path, scale=TINY, ids=["table1", "nope"])
        blob = json.loads((tmp_path / "journal.json").read_text())
        assert blob["experiments"] == {"table1": DONE, "nope": FAILED}
        # The summary still covers the completed prefix.
        summary = json.loads((tmp_path / "batch_summary.json").read_text())
        assert summary["num_experiments"] == 1
        assert (tmp_path / "table1.txt").exists()

    def test_interrupt_marks_journal_and_writes_summary(self, tmp_path):
        calls = []
        original = EXPERIMENTS["x1"]

        def _interrupted(scale, **kwargs):
            calls.append(scale)
            raise KeyboardInterrupt

        EXPERIMENTS["x1"] = _interrupted
        try:
            with pytest.raises(KeyboardInterrupt):
                run_batch(tmp_path, scale=TINY, ids=["table1", "x1"])
        finally:
            EXPERIMENTS["x1"] = original
        assert calls  # the stub actually ran
        blob = json.loads((tmp_path / "journal.json").read_text())
        assert blob["experiments"] == {"table1": DONE, "x1": FAILED}
        assert (tmp_path / "batch_summary.json").exists()

    def test_resume_skips_done_and_matches_uninterrupted(self, tmp_path):
        interrupted = tmp_path / "interrupted"
        clean = tmp_path / "clean"
        original = EXPERIMENTS["fig5"]

        def _dies(scale, **kwargs):
            raise KeyboardInterrupt

        EXPERIMENTS["fig5"] = _dies
        try:
            with pytest.raises(KeyboardInterrupt):
                run_batch(interrupted, scale=TINY, ids=["fig3", "fig5"])
        finally:
            EXPERIMENTS["fig5"] = original
        # Resume finishes only fig5; fig3 is skipped as already done.
        run_batch(
            interrupted, scale=TINY, ids=["fig3", "fig5"], resume=True
        )
        summary = json.loads(
            (interrupted / "batch_summary.json").read_text()
        )
        assert summary["skipped"] == ["fig3"]
        assert summary["num_experiments"] == 1  # only fig5 recomputed
        blob = json.loads((interrupted / "journal.json").read_text())
        assert blob["experiments"] == {"fig3": DONE, "fig5": DONE}
        # Bit-identical to a batch that was never interrupted.
        run_batch(clean, scale=TINY, ids=["fig3", "fig5"])
        for eid in ("fig3", "fig5"):
            a = load_result(interrupted / f"{eid}.json")
            b = load_result(clean / f"{eid}.json")
            a.pop("timings")
            b.pop("timings")
            assert a == b

    def test_resume_recomputes_done_with_missing_files(self, tmp_path):
        run_batch(tmp_path, scale=TINY, ids=["table1"])
        (tmp_path / "table1.json").unlink()  # outputs lost, journal says done
        run_batch(tmp_path, scale=TINY, ids=["table1"], resume=True)
        assert (tmp_path / "table1.json").exists()
        summary = json.loads((tmp_path / "batch_summary.json").read_text())
        assert summary["skipped"] == []
        assert summary["num_experiments"] == 1

    def test_resume_scale_mismatch_rejected(self, tmp_path):
        run_batch(tmp_path, scale=TINY, ids=["table1"])
        from repro.experiments import get_scale

        with pytest.raises(ValueError, match="scale"):
            run_batch(
                tmp_path, scale=get_scale("bench"), ids=["table1"], resume=True
            )
