"""Tests for the plain-text report rendering."""

import math

from repro.experiments import ExperimentResult, ResultTable, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(("name", "value"), [("a", 1), ("long-name", 22)])
        lines = text.splitlines()
        assert len(lines) == 4
        # All lines equally wide (aligned columns).
        assert len(set(len(line) for line in lines)) == 1

    def test_header_and_separator(self):
        text = format_table(("x",), [(1,)])
        lines = text.splitlines()
        assert lines[0].strip() == "x"
        assert set(lines[1].strip()) == {"-"}

    def test_float_formatting(self):
        text = format_table(("v",), [(0.123456,)])
        assert "0.123" in text
        assert "0.1234" not in text

    def test_integral_float_rendered_as_int(self):
        assert "3\n" in format_table(("v",), [(3.0,)]) + "\n"

    def test_none_and_inf(self):
        text = format_table(("a", "b"), [(None, math.inf)])
        assert "-" in text
        assert "inf" in text

    def test_indent(self):
        text = format_table(("x",), [(1,)], indent="  ")
        assert all(line.startswith("  ") for line in text.splitlines())

    def test_strings_pass_through(self):
        assert "hello" in format_table(("s",), [("hello",)])


class TestResultTable:
    def test_render_contains_caption(self):
        table = ResultTable("my caption", ("a",), [(1,)])
        out = table.render()
        assert out.startswith("my caption")
        assert "a" in out


class TestExperimentResult:
    def test_add_table_and_render(self):
        result = ExperimentResult(
            experiment_id="figX",
            title="Title",
            description="Desc",
            paper_expectation="should go up",
        )
        result.add_table("t1", ("k", "v"), [(1, 2), (3, 4)])
        out = result.render()
        assert "=== figX: Title ===" in out
        assert "Desc" in out
        assert "should go up" in out
        assert "t1" in out
        assert result.tables[0].rows == [(1, 2), (3, 4)]

    def test_render_without_expectation(self):
        result = ExperimentResult("id", "T", "D")
        assert "Paper expectation" not in result.render()

    def test_data_dict_defaults_empty(self):
        assert ExperimentResult("id", "T", "D").data == {}
