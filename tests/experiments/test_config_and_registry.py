"""Tests for experiment scales, dataset caching, and the registry."""

import pytest

from repro.experiments import (
    BENCH,
    FULL,
    EXPERIMENTS,
    ExperimentScale,
    experiment_ids,
    facebook_dataset,
    get_scale,
    run_experiment,
    twitter_dataset,
)

#: A deliberately tiny scale so registry smoke tests stay fast.
TINY = ExperimentScale(
    name="tiny-test",
    facebook_users=400,
    twitter_users=400,
    cohort_degree=8,
    max_cohort_users=5,
    repeats=1,
    seed=7,
)


class TestScales:
    def test_bench_and_full_presets(self):
        assert BENCH.name == "bench"
        assert FULL.facebook_users == 13884
        assert FULL.repeats == 5

    def test_get_scale(self):
        assert get_scale("bench") is BENCH
        assert get_scale("full") is FULL
        with pytest.raises(ValueError):
            get_scale("gigantic")

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentScale(name="x", facebook_users=10, twitter_users=500)
        with pytest.raises(ValueError):
            ExperimentScale(
                name="x", facebook_users=500, twitter_users=500, repeats=0
            )


class TestDatasetCaching:
    def test_same_object_returned(self):
        assert facebook_dataset("bench") is facebook_dataset("bench")
        assert twitter_dataset("bench") is twitter_dataset("bench")

    def test_kinds(self):
        assert facebook_dataset("bench").kind == "facebook"
        assert twitter_dataset("bench").kind == "twitter"


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        ids = experiment_ids()
        assert ids[0] == "table1"
        for fig in range(2, 12):
            assert f"fig{fig}" in ids
        assert "x1" in ids

    def test_unknown_experiment(self):
        with pytest.raises(ValueError):
            run_experiment("fig99")

    def test_every_experiment_callable(self):
        for eid, fn in EXPERIMENTS.items():
            assert callable(fn), eid


class TestSmokeRuns:
    """Cheap end-to-end runs of representative experiments at TINY scale."""

    def test_table1(self):
        result = run_experiment("table1", TINY)
        assert result.experiment_id == "table1"
        assert result.tables
        assert result.data["facebook"].num_users > 0

    def test_fig2(self):
        result = run_experiment("fig2", TINY)
        assert sum(result.data["facebook"].values()) > 0

    def test_fig4_structure(self):
        result = run_experiment("fig4", TINY)
        assert set(result.data) >= {"FixedLength-2h", "FixedLength-8h", "degrees"}
        series = result.data["FixedLength-8h"]["maxav"]["availability"]
        assert len(series) == 11
        assert all(0 <= v <= 1 for v in series)

    def test_x1(self):
        result = run_experiment("x1", TINY)
        assert result.data["max_avail_delta"] < 0.1
        assert (
            result.data["worst_des_delay"]
            <= result.data["analytic_bound"] + 1e-6
        )
