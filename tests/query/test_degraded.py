"""Degraded serving: deadlines, fallback, stale-if-error, isolation.

The contract: degradation changes *which path runs* or *which stored
answer is served*, never any float.  A fallback answer equals the
primary answer bit for bit (backend identity); a stale answer equals
the stored lower-degree answer exactly; and every degraded answer is
flagged — never silently substituted.
"""

import functools
import threading

import pytest

from repro.cache import SweepCache
from repro.core import make_policy
from repro.datasets import synthetic_facebook
from repro.onlinetime import SporadicModel
from repro.parallel import FaultInjector, InjectedFault
from repro.query import MicroBatcher, QueryPlane, QueryRequest
from repro.resilience import (
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    DegradationPolicy,
)
from repro.timeline.packed import NUMPY

SEED = 5


@functools.lru_cache(maxsize=1)
def _dataset():
    return synthetic_facebook(300, seed=9)


def _users(n):
    return sorted(_dataset().graph.users())[:n]


def _plane(mode="refuse", **kwargs):
    return QueryPlane(
        _dataset(),
        SporadicModel(),
        seed=SEED,
        degradation=DegradationPolicy(mode=mode),
        **kwargs,
    )


class FakeClock:
    def __init__(self, now=0.0):
        self.now = float(now)

    def __call__(self):
        return self.now


class TestFallbackServing:
    def test_transient_poison_recovers_on_fallback_bit_identically(self):
        user = _users(1)[0]
        clean = _plane().evaluate(user, make_policy("maxav"), 3)
        plane = _plane(
            mode="fallback",
            fault_injector=FaultInjector.poison_queries([user], times=1),
        )
        outcome = plane.evaluate_resilient(user, make_policy("maxav"), 3)
        assert outcome.ok and outcome.degraded
        assert outcome.reason == "fallback"
        assert "InjectedFault" in outcome.detail
        assert outcome.value == clean
        assert plane.stats()["fallback_served"] == 1

    def test_refuse_mode_raises_the_original_error(self):
        user = _users(1)[0]
        plane = _plane(
            mode="refuse",
            fault_injector=FaultInjector.poison_queries([user], times=1),
        )
        outcome = plane.evaluate_resilient(user, make_policy("maxav"), 3)
        assert not outcome.ok
        with pytest.raises(InjectedFault):
            outcome.unwrap()
        assert plane.stats()["failed"] == 1

    def test_fallback_answer_lands_in_the_caches(self):
        # A fallback-computed answer is a real answer: the next query
        # for the same key is a fresh hit.
        user = _users(1)[0]
        plane = _plane(
            mode="fallback",
            fault_injector=FaultInjector.poison_queries([user], times=1),
        )
        first = plane.evaluate_resilient(user, make_policy("maxav"), 3)
        assert first.reason == "fallback"
        second = plane.evaluate_resilient(user, make_policy("maxav"), 3)
        assert not second.degraded
        assert second.value == first.value


class TestStaleServing:
    def test_poisoned_query_serves_stored_lower_degree_answer(self):
        user = _users(1)[0]
        policy = make_policy("maxav")
        store = SweepCache()
        # Prime degree-2 through a healthy plane sharing the store.
        healthy = QueryPlane(
            _dataset(), SporadicModel(), seed=SEED, cache=store
        )
        stored = healthy.evaluate(user, policy, 2)
        # A fresh plane (cold LRUs) with a fully poisoned query can only
        # serve from the store — and must flag what it served.
        plane = _plane(
            mode="stale",
            cache=store,
            fault_injector=FaultInjector.poison_queries([user], times=None),
        )
        outcome = plane.evaluate_resilient(user, make_policy("maxav"), 3)
        assert outcome.ok and outcome.degraded
        assert outcome.reason == "stale"
        assert "degree-2" in outcome.detail and "degree-3" in outcome.detail
        assert outcome.value == stored
        assert plane.stats()["stale_served"] == 1

    def test_stale_mode_without_any_stored_answer_fails(self):
        user = _users(1)[0]
        plane = _plane(
            mode="stale",
            fault_injector=FaultInjector.poison_queries([user], times=None),
        )
        outcome = plane.evaluate_resilient(user, make_policy("maxav"), 3)
        assert not outcome.ok
        assert plane.stats()["stale_served"] == 0
        assert plane.stats()["failed"] == 1

    def test_full_poison_beats_fallback_but_stale_still_serves(self):
        # times=None poisons the fallback retry too: only the store wins.
        user = _users(1)[0]
        store = SweepCache()
        QueryPlane(
            _dataset(), SporadicModel(), seed=SEED, cache=store
        ).evaluate(user, make_policy("maxav"), 3)
        plane = _plane(
            mode="fallback",
            cache=store,
            fault_injector=FaultInjector.poison_queries([user], times=None),
        )
        # The exact-k store hit would serve fresh; query k+1 so compute
        # actually runs (and fails twice), degrading to the k=3 answer.
        outcome = plane.evaluate_resilient(user, make_policy("maxav"), 4)
        assert outcome.reason == "stale"
        assert "degree-3" in outcome.detail


class TestDeadlines:
    def test_expired_deadline_refuses_or_serves_stale(self):
        user = _users(1)[0]
        policy = make_policy("maxav")
        clock = FakeClock()
        expired = Deadline(0.0, clock=clock)
        plane = _plane(mode="refuse")
        outcome = plane.evaluate_resilient(
            user, policy, 3, deadline=expired
        )
        assert not outcome.ok
        with pytest.raises(DeadlineExceeded):
            outcome.unwrap()
        # With a store and stale mode, the same blown deadline serves
        # the stored lower-degree answer (degree 4 itself is unstored,
        # so the lookup misses and the deadline check fires).
        store = SweepCache()
        QueryPlane(
            _dataset(), SporadicModel(), seed=SEED, cache=store
        ).evaluate(user, policy, 3)
        stale_plane = _plane(mode="stale", cache=store)
        outcome = stale_plane.evaluate_resilient(
            user, make_policy("maxav"), 4, deadline=Deadline(0.0, clock=clock)
        )
        assert outcome.ok and outcome.reason == "stale"
        assert "DeadlineExceeded" in outcome.detail

    def test_generous_deadline_changes_nothing(self):
        user = _users(1)[0]
        clean = _plane().evaluate(user, make_policy("maxav"), 3)
        outcome = _plane(mode="fallback").evaluate_resilient(
            user, make_policy("maxav"), 3, deadline=Deadline.after_ms(60000)
        )
        assert not outcome.degraded
        assert outcome.value == clean

    def test_cache_hit_beats_an_expired_deadline(self):
        # The lookup costs nothing; deadlines gate *compute* stages.
        user = _users(1)[0]
        plane = _plane(mode="refuse")
        clean = plane.evaluate(user, make_policy("maxav"), 3)
        outcome = plane.evaluate_resilient(
            user, make_policy("maxav"), 3, deadline=Deadline(0.0)
        )
        assert outcome.ok and not outcome.degraded
        assert outcome.value == clean


class TestCircuitBreaker:
    def test_open_breaker_short_circuits_to_scalar_path(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_after=60.0, clock=clock
        )
        breaker.record_failure()  # open it
        user = _users(1)[0]
        clean = _plane().evaluate(user, make_policy("maxav"), 3)
        plane = QueryPlane(
            _dataset(),
            SporadicModel(),
            backend=NUMPY,
            seed=SEED,
            degradation=DegradationPolicy(mode="fallback"),
            breaker=breaker,
        )
        outcome = plane.evaluate_resilient(user, make_policy("maxav"), 3)
        assert outcome.reason == "fallback"
        assert "circuit open" in outcome.detail
        assert outcome.value == clean
        assert breaker.stats()["short_circuits"] >= 1

    def test_numpy_failures_trip_the_breaker(self):
        user = _users(1)[0]
        breaker = CircuitBreaker(failure_threshold=2, reset_after=60.0)
        plane = QueryPlane(
            _dataset(),
            SporadicModel(),
            backend=NUMPY,
            seed=SEED,
            degradation=DegradationPolicy(mode="fallback"),
            breaker=breaker,
            fault_injector=FaultInjector.poison_queries(
                _users(3), times=1
            ),
        )
        for u in _users(2):
            plane.evaluate_resilient(u, make_policy("maxav"), 2)
        assert breaker.stats()["state"] == "open"
        # Third query: no primary attempt at all, straight to scalar.
        outcome = plane.evaluate_resilient(
            _users(3)[2], make_policy("maxav"), 2
        )
        assert outcome.reason == "fallback"
        assert "circuit open" in outcome.detail


class TestBatchIsolation:
    def test_poisoned_request_spares_its_batch_neighbours(self):
        # Satellite regression: one bad request in a micro-batch used to
        # throw for every member; now only its own caller sees it.
        users = _users(6)
        poisoned = users[2]
        plane = _plane(
            mode="refuse",
            fault_injector=FaultInjector.poison_queries(
                [poisoned], times=None
            ),
        )
        requests = [
            QueryRequest(u, make_policy("random"), 2) for u in users
        ]
        outcomes = plane.evaluate_many_resilient(requests)
        reference = _plane()
        for user, outcome in zip(users, outcomes):
            if user == poisoned:
                assert not outcome.ok
                with pytest.raises(InjectedFault):
                    outcome.unwrap()
            else:
                assert outcome.ok and not outcome.degraded
                assert outcome.value == reference.evaluate(
                    user, make_policy("random"), 2
                )

    def test_microbatcher_isolates_the_poisoned_caller(self):
        users = _users(8)
        poisoned = users[3]
        plane = _plane(
            mode="refuse",
            fault_injector=FaultInjector.poison_queries(
                [poisoned], times=None
            ),
        )
        batcher = MicroBatcher(plane, window=0.01)
        results = {}
        errors = {}

        def ask(user):
            try:
                results[user] = batcher.evaluate(
                    user, make_policy("random"), 2
                )
            except BaseException as exc:
                errors[user] = exc

        threads = [
            threading.Thread(target=ask, args=(u,)) for u in users
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert set(errors) == {poisoned}
        assert isinstance(errors[poisoned], InjectedFault)
        reference = _plane()
        for user in users:
            if user == poisoned:
                continue
            assert results[user] == reference.evaluate(
                user, make_policy("random"), 2
            )
        stats = batcher.stats()
        assert stats["failed_requests"] == 1

    def test_batcher_counts_degraded_answers(self):
        users = _users(4)
        poisoned = users[0]
        plane = _plane(
            mode="fallback",
            fault_injector=FaultInjector.poison_queries(
                [poisoned], times=1
            ),
        )
        batcher = MicroBatcher(plane, window=0.0)
        outcome = batcher.evaluate_resilient(
            poisoned, make_policy("random"), 2
        )
        assert outcome.reason == "fallback"
        assert batcher.stats()["degraded_answers"] == 1

    def test_per_request_deadlines_in_one_batch(self):
        users = _users(2)
        plane = _plane(mode="refuse")
        requests = [
            QueryRequest(
                users[0], make_policy("random"), 2, deadline=Deadline(0.0)
            ),
            QueryRequest(users[1], make_policy("random"), 2),
        ]
        outcomes = plane.evaluate_many_resilient(requests)
        assert not outcomes[0].ok
        assert isinstance(outcomes[0].error, DeadlineExceeded)
        assert outcomes[1].ok and not outcomes[1].degraded
