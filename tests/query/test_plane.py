"""The warm query plane's bit-identity contract and warm-state caches.

The load-bearing property: a point query answered by any
:class:`QueryPlane` configuration — engine, backend, warm or cold
state, cached or recomputed, batched or lone — equals the matching cell
of a batch sweep bit for bit.  Everything else here (LRU behavior,
store composition, payload round trips) protects the machinery that
makes repeated queries cheap without touching the floats.
"""

import json
import math
import os
import subprocess
import sys
import threading

import pytest

import functools

from repro.cache import SweepCache, point_query_key
from repro.core import CONREP, UNCONREP, make_policy
from repro.core.evaluation import evaluate_single
from repro.core.metrics import UserMetrics
from repro.datasets import synthetic_facebook
from repro.onlinetime import SporadicModel, compute_schedules
from repro.onlinetime.base import packed_schedules
from repro.onlinetime.explicit import ExplicitScheduleModel
from repro.parallel import SweepPayload, evaluate_users_chunk
from repro.query import (
    MicroBatcher,
    QueryPlane,
    QueryRequest,
    metrics_from_payload,
    metrics_to_payload,
)
from repro.timeline.packed import NUMPY, PYTHON

SEED = 5
POLICIES = ("random", "mostactive", "maxav")
DEGREES = (0, 1, 2, 3)


@functools.lru_cache(maxsize=1)
def _dataset():
    return synthetic_facebook(300, seed=9)


@functools.lru_cache(maxsize=1)
def _integral_model():
    """Integral-endpoint sessions: the packing is exact, so the batched
    overlap prewarm actually engages."""
    dataset = _dataset()
    sessions = {
        u: [((u * 131) % 18 * 3600.0, ((u * 131) % 18 + 5) * 3600.0)]
        for u in dataset.graph.users()
    }
    return ExplicitScheduleModel(sessions)


def _sweep_cells(model, mode, engine, backend, users):
    dataset = _dataset()
    schedules = compute_schedules(dataset, model, seed=SEED)
    packed = (
        packed_schedules(dataset, model, seed=SEED)
        if backend == NUMPY
        else None
    )
    payload = SweepPayload(
        dataset=dataset,
        schedules=schedules,
        policies=tuple(make_policy(p) for p in POLICIES),
        mode=mode,
        degrees=DEGREES,
        max_degree=max(DEGREES),
        seed=SEED,
        engine=engine,
        backend=backend,
        packed=packed,
    )
    return evaluate_users_chunk(payload, users)


class TestPlaneMatchesSweep:
    @pytest.mark.parametrize("mode", [CONREP, UNCONREP])
    @pytest.mark.parametrize("engine", ["incremental", "naive"])
    @pytest.mark.parametrize("backend", [PYTHON, NUMPY])
    def test_point_queries_equal_sweep_cells(self, mode, engine, backend):
        dataset = _dataset()
        model = SporadicModel()
        users = sorted(dataset.graph.users())[:5]
        cells = _sweep_cells(model, mode, engine, backend, users)
        plane = QueryPlane(
            dataset, model, mode=mode, engine=engine, backend=backend,
            seed=SEED,
        )
        # Descending degree first: later smaller degrees must reuse the
        # cached deeper sequence's prefix, not re-derive a fresh one.
        order = sorted(enumerate(DEGREES), key=lambda ik: -ik[1])
        for user, cell in zip(users, cells):
            for policy_name in POLICIES:
                for i, k in order:
                    got = plane.evaluate(user, make_policy(policy_name), k)
                    assert got == cell[policy_name][i]

    def test_warm_state_reuse_is_invisible(self):
        # Asking the same plane the same question twice, and asking a
        # fresh plane, all yield the identical object-equal metrics.
        dataset = _dataset()
        model = SporadicModel()
        user = sorted(dataset.graph.users())[3]
        policy = make_policy("maxav")
        warm = QueryPlane(dataset, model, seed=SEED)
        first = warm.evaluate(user, policy, 3)
        second = warm.evaluate(user, make_policy("maxav"), 3)
        cold = QueryPlane(dataset, model, seed=SEED).evaluate(
            user, make_policy("maxav"), 3
        )
        assert first == second == cold
        assert warm.stats()["result_hits"] == 1

    def test_evaluate_single_matches_plane(self):
        dataset = _dataset()
        model = SporadicModel()
        schedules = compute_schedules(dataset, model, seed=SEED)
        user = sorted(dataset.graph.users())[0]
        direct = evaluate_single(
            dataset, schedules, user, make_policy("random"), 2, seed=SEED
        )
        plane = QueryPlane(dataset, model, seed=SEED)
        assert plane.evaluate(user, make_policy("random"), 2) == direct


class TestMicroBatching:
    def test_evaluate_many_matches_singles_with_prewarm(self):
        # Integral model => exact packing => the overlap_pairs prewarm
        # path actually runs; the batch must still be bit-identical.
        dataset = _dataset()
        model = _integral_model()
        users = sorted(dataset.graph.users())[:8]
        plane = QueryPlane(dataset, model, backend=NUMPY, seed=SEED)
        plane.warm()
        assert plane.packed.exact
        requests = [
            QueryRequest(u, make_policy(p), k)
            for u in users
            for p in ("maxav", "random")
            for k in (1, 3)
        ]
        batch = plane.evaluate_many(requests)
        reference = QueryPlane(dataset, model, backend=NUMPY, seed=SEED)
        for request, metrics in zip(requests, batch):
            assert metrics == reference.evaluate(
                request.user, request.policy, request.k
            )

    def test_evaluate_many_fractional_skips_prewarm(self):
        dataset = _dataset()
        model = SporadicModel()  # fractional endpoints: inexact packing
        users = sorted(dataset.graph.users())[:4]
        plane = QueryPlane(dataset, model, backend=NUMPY, seed=SEED)
        requests = [QueryRequest(u, make_policy("maxav"), 2) for u in users]
        batch = plane.evaluate_many(requests)
        reference = QueryPlane(dataset, model, backend=NUMPY, seed=SEED)
        for request, metrics in zip(requests, batch):
            assert metrics == reference.evaluate(
                request.user, request.policy, request.k
            )

    def test_concurrent_microbatcher_identical_to_serial(self):
        dataset = _dataset()
        model = SporadicModel()
        users = sorted(dataset.graph.users())[:10]
        plane = QueryPlane(dataset, model, backend=NUMPY, seed=SEED)
        batcher = MicroBatcher(plane, window=0.005)
        results = {}

        def ask(user, k):
            results[(user, k)] = batcher.evaluate(
                user, make_policy("random"), k
            )

        threads = [
            threading.Thread(target=ask, args=(u, k))
            for u in users
            for k in (1, 2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == len(users) * 2
        reference = QueryPlane(dataset, model, seed=SEED)
        for (user, k), metrics in results.items():
            assert metrics == reference.evaluate(
                user, make_policy("random"), k
            )
        stats = batcher.stats()
        assert stats["batched_requests"] == len(users) * 2
        assert stats["batches"] >= 1

    def test_batch_errors_propagate_to_every_member(self):
        dataset = _dataset()
        plane = QueryPlane(dataset, SporadicModel(), seed=SEED)
        batcher = MicroBatcher(plane, window=0.0)
        with pytest.raises(ValueError):
            batcher.evaluate(0, make_policy("random"), -1)

    def test_negative_window_rejected(self):
        plane = QueryPlane(_dataset(), SporadicModel(), seed=SEED)
        with pytest.raises(ValueError):
            MicroBatcher(plane, window=-0.1)


class TestResultStore:
    def test_store_round_trip_across_planes_and_disk(self, tmp_path):
        dataset = _dataset()
        model = SporadicModel()
        user = sorted(dataset.graph.users())[2]
        store = SweepCache(cache_dir=str(tmp_path))
        first = QueryPlane(dataset, model, seed=SEED, cache=store).evaluate(
            user, make_policy("maxav"), 3
        )
        # Fresh in-memory store over the same directory: the hit comes
        # off disk, through JSON, and must round-trip bit-identically.
        reloaded = SweepCache(cache_dir=str(tmp_path))
        plane = QueryPlane(dataset, model, seed=SEED, cache=reloaded)
        assert plane.evaluate(user, make_policy("maxav"), 3) == first
        assert plane.stats()["store_hits"] == 1
        assert reloaded.stats.disk_hits == 1

    def test_infinite_delay_survives_payload_round_trip(self):
        metrics = UserMetrics(
            user=7,
            allowed_degree=2,
            replicas=(1, 2),
            availability=0.25,
            max_achievable_availability=0.5,
            aod_time=0.1,
            aod_activity=0.2,
            expected_activity_fraction=0.3,
            aod_activity_expected=0.2,
            aod_activity_unexpected=0.4,
            delay_hours_actual=float("inf"),
            delay_hours_observed=float("inf"),
        )
        payload = json.loads(json.dumps(metrics_to_payload(metrics)))
        restored = metrics_from_payload(payload)
        assert restored == metrics
        assert math.isinf(restored.delay_hours_actual)

    def test_key_discriminates_user_degree_policy(self):
        dataset = _dataset()
        model = SporadicModel()
        base = dict(mode=CONREP, user=1, k=2, seed=SEED)
        key = point_query_key(dataset, model, make_policy("random"), **base)
        assert key != point_query_key(
            dataset, model, make_policy("random"),
            **{**base, "user": 2},
        )
        assert key != point_query_key(
            dataset, model, make_policy("random"), **{**base, "k": 3}
        )
        assert key != point_query_key(
            dataset, model, make_policy("maxav"), **base
        )
        assert key == point_query_key(
            dataset, model, make_policy("random"), **base
        )


class TestPlaneState:
    def test_lru_bounds_hold(self):
        dataset = _dataset()
        model = SporadicModel()
        users = sorted(dataset.graph.users())[:6]
        plane = QueryPlane(
            dataset, model, seed=SEED, max_users=2, max_results=3
        )
        for user in users:
            plane.evaluate(user, make_policy("random"), 1)
        stats = plane.stats()
        assert stats["evaluators"]["entries"] <= 2
        assert stats["results"]["entries"] <= 3
        assert stats["evaluators"]["evictions"] >= 4
        # Evicted warm state rebuilds transparently and identically.
        again = plane.evaluate(users[0], make_policy("random"), 1)
        cold = QueryPlane(dataset, model, seed=SEED).evaluate(
            users[0], make_policy("random"), 1
        )
        assert again == cold

    def test_bounded_overlap_rows_do_not_change_results(self):
        dataset = _dataset()
        model = SporadicModel()
        users = sorted(dataset.graph.users())[:4]
        bounded = QueryPlane(dataset, model, seed=SEED, overlap_max_rows=1)
        plain = QueryPlane(dataset, model, seed=SEED)
        for user in users:
            for k in (1, 3):
                assert bounded.evaluate(
                    user, make_policy("maxav"), k
                ) == plain.evaluate(user, make_policy("maxav"), k)

    def test_stats_shape(self):
        plane = QueryPlane(_dataset(), SporadicModel(), seed=SEED)
        plane.evaluate(
            sorted(_dataset().graph.users())[0], make_policy("random"), 1
        )
        stats = plane.stats()
        assert set(stats) == {
            "queries",
            "result_hits",
            "store_hits",
            "batched",
            "stale_served",
            "fallback_served",
            "failed",
            "degraded_mode",
            "breaker",
            "evaluators",
            "sequences",
            "results",
        }
        for lru in ("evaluators", "sequences", "results"):
            assert set(stats[lru]) == {
                "entries",
                "max_entries",
                "hits",
                "misses",
                "evictions",
            }


SRC_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "src"
)

_SUBPROCESS_SCRIPT = """
import json
from repro.core import make_policy
from repro.datasets import synthetic_facebook
from repro.onlinetime import SporadicModel
from repro.query import QueryPlane

dataset = synthetic_facebook(120, seed=9)
plane = QueryPlane(dataset, SporadicModel(), seed=5)
user = sorted(dataset.graph.users())[1]
m = plane.evaluate(user, make_policy("random"), 2)
print(json.dumps({
    "replicas": list(m.replicas),
    "availability": m.availability.hex(),
    "aod_time": m.aod_time.hex(),
    "delay": repr(m.delay_hours_actual),
}))
"""


def _query_under_hashseed(hashseed):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SCRIPT],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(proc.stdout)


class TestHashSeedIndependence:
    def test_point_query_identical_across_hash_seeds(self):
        # Interpreters with different string-hash salts must produce the
        # identical placement and float bits — any hash()-ordered set
        # iteration in the plane's warm path would break this.
        assert _query_under_hashseed("0") == _query_under_hashseed("4242")
