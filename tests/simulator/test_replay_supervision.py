"""Supervised sharded replay: hung/crashed shards recover bit-identically.

Satellite of the degraded-mode PR: ``replay_trace`` dispatches shard
indices through the supervised :class:`ParallelExecutor`, so a shard
whose worker hangs past ``chunk_timeout`` (or dies outright) is killed,
the pool rebuilt, and the shard replayed on a fresh worker — and the
merged :class:`SimulationStats` must equal an unfaulted serial replay
field for field.  Recovery changes wall-clock, never floats.
"""

import functools

import pytest

from repro.core import CONREP, make_policy, placement_sequences, select_cohort
from repro.datasets import synthetic_facebook
from repro.onlinetime import SporadicModel, compute_schedules
from repro.parallel import (
    FaultInjector,
    ParallelExecutor,
    RetryPolicy,
    fork_available,
)
from repro.simulator import ReplayConfig, replay_trace

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="needs the fork start method"
)

#: No real sleeping between retries.
FAST = RetryPolicy(max_attempts=3, base_delay=0.0, max_delay=0.0, jitter=0.0)


@functools.lru_cache(maxsize=1)
def _scenario():
    ds = synthetic_facebook(200, seed=13)
    model = SporadicModel()
    schedules = compute_schedules(ds, model, seed=13)
    users = select_cohort(ds, 6, max_users=12)
    if not users:
        users = sorted(ds.graph.users())[:12]
    placements = placement_sequences(
        ds,
        schedules,
        users,
        make_policy("maxav"),
        mode=CONREP,
        max_degree=3,
        seed=13,
    )
    return ds, schedules, tuple(users), placements


@functools.lru_cache(maxsize=1)
def _clean_outcome():
    """The serial, unfaulted reference replay."""
    ds, schedules, users, placements = _scenario()
    return replay_trace(
        ds,
        schedules,
        placements,
        config=ReplayConfig(days=2),
        tracked_profiles=users,
        shards=1,
    )


def _faulted_replay(injector, *, chunk_timeout, retry=FAST, shards=4):
    ds, schedules, users, placements = _scenario()
    with ParallelExecutor(
        jobs=2,
        chunk_size=1,
        retry=retry,
        chunk_timeout=chunk_timeout,
        fault_injector=injector,
    ) as executor:
        outcome = replay_trace(
            ds,
            schedules,
            placements,
            config=ReplayConfig(days=2),
            tracked_profiles=users,
            shards=shards,
            executor=executor,
        )
    return outcome, executor


@needs_fork
class TestChunkTimeoutRecovery:
    def test_hung_shard_is_killed_and_replayed_bit_identically(self):
        # Shard index 1 hangs far past the chunk deadline on its first
        # dispatch; the supervisor kills the worker, rebuilds the pool
        # and replays the shard.  The merged stats must equal the
        # serial, unfaulted run exactly.
        injector = FaultInjector.once(hang={1}, hang_seconds=30)
        outcome, executor = _faulted_replay(injector, chunk_timeout=1.0)
        clean = _clean_outcome()
        assert outcome.stats.to_dict() == clean.stats.to_dict()
        assert executor.pool_stats.timeouts >= 1
        assert executor.pool_stats.rebuilds >= 1

    def test_crashed_shard_worker_recovers_bit_identically(self):
        injector = FaultInjector.once(crash={2})
        outcome, executor = _faulted_replay(injector, chunk_timeout=30.0)
        clean = _clean_outcome()
        assert outcome.stats.to_dict() == clean.stats.to_dict()
        assert executor.pool_stats.rebuilds >= 1

    def test_unfaulted_sharded_replay_matches_serial(self):
        # Control: the same executor knobs without faults — sharding
        # through the supervised pool is already bit-identical.
        outcome, _ = _faulted_replay(FaultInjector(), chunk_timeout=30.0)
        clean = _clean_outcome()
        assert outcome.stats.to_dict() == clean.stats.to_dict()
