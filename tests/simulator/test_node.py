"""Tests for PeerNode schedule-driven online/offline transitions."""

from repro.simulator import PeerNode, Simulator
from repro.timeline import DAY_SECONDS, HOUR_SECONDS, IntervalSet


def _hours(start, end):
    return IntervalSet([(start * HOUR_SECONDS, end * HOUR_SECONDS)])


class TestTransitions:
    def test_comes_online_and_offline(self):
        sim = Simulator()
        node = PeerNode(1, _hours(2, 4))
        log = []
        node.subscribe_online(lambda n: log.append(("on", sim.now)))
        node.subscribe_offline(lambda n: log.append(("off", sim.now)))
        node.attach(sim, days=1)
        sim.run(until=DAY_SECONDS)
        assert ("on", 2 * HOUR_SECONDS) in log
        assert ("off", 4 * HOUR_SECONDS) in log

    def test_online_state_between_transitions(self):
        sim = Simulator()
        node = PeerNode(1, _hours(2, 4))
        node.attach(sim, days=1)
        states = []
        sim.schedule_at(3 * HOUR_SECONDS, lambda: states.append(node.online))
        sim.schedule_at(5 * HOUR_SECONDS, lambda: states.append(node.online))
        sim.run(until=DAY_SECONDS)
        assert states == [True, False]

    def test_daily_repetition(self):
        sim = Simulator()
        node = PeerNode(1, _hours(2, 4))
        ons = []
        node.subscribe_online(lambda n: ons.append(sim.now))
        node.attach(sim, days=3)
        sim.run(until=3 * DAY_SECONDS)
        assert len(ons) == 3
        assert ons[1] - ons[0] == DAY_SECONDS

    def test_multiple_intervals_per_day(self):
        sim = Simulator()
        node = PeerNode(1, IntervalSet([(0, 100), (200, 300)]))
        transitions = []
        node.subscribe_online(lambda n: transitions.append(("on", sim.now)))
        node.subscribe_offline(lambda n: transitions.append(("off", sim.now)))
        node.attach(sim, days=1)
        sim.run(until=DAY_SECONDS - 1)
        assert transitions[:4] == [
            ("on", 0.0),
            ("off", 100.0),
            ("on", 200.0),
            ("off", 300.0),
        ]

    def test_empty_schedule_never_online(self):
        sim = Simulator()
        node = PeerNode(1, IntervalSet.empty())
        node.attach(sim, days=2)
        sim.run(until=2 * DAY_SECONDS)
        assert node.online is False
        assert sim.events_executed == 0

    def test_half_open_boundary(self):
        """At the exact end instant the node is already offline; at the
        start instant it is online (transition priorities)."""
        sim = Simulator()
        node = PeerNode(1, _hours(2, 4))
        node.attach(sim, days=1)
        at_start, at_end = [], []
        sim.schedule_at(2 * HOUR_SECONDS, lambda: at_start.append(node.online))
        sim.schedule_at(4 * HOUR_SECONDS, lambda: at_end.append(node.online))
        sim.run(until=DAY_SECONDS)
        assert at_start == [True]
        assert at_end == [False]

    def test_is_scheduled_online_periodic(self):
        node = PeerNode(1, _hours(2, 4))
        assert node.is_scheduled_online(DAY_SECONDS + 3 * HOUR_SECONDS)
        assert not node.is_scheduled_online(DAY_SECONDS + 5 * HOUR_SECONDS)

    def test_attach_mid_interval_comes_online_immediately(self):
        sim = Simulator(start_time=3 * HOUR_SECONDS)
        node = PeerNode(1, _hours(2, 4))
        node.attach(sim, days=1)
        states = []
        sim.schedule_at(3.5 * HOUR_SECONDS, lambda: states.append(node.online))
        sim.run(until=DAY_SECONDS)
        assert states == [True]
