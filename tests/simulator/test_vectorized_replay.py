"""Property suite: the vectorized replay against the scalar oracle.

The contract of the packed-plane port is *bit identity*, not statistical
agreement: for every dataset, online-time model, latency model and
``ReplayConfig`` knob, :class:`VectorizedReplay` must produce a
``SimulationStats`` whose ``to_dict()`` rendering equals the scalar
:class:`DecentralizedOSN`'s field for field, and replay the same logical
event count.  The same identity must hold across the orchestration knobs
— ``backend`` x ``shards`` x ``jobs`` — which is what licenses the replay
cache key to exclude all three.

The cross-validation class runs on randomized synthetic datasets
(Facebook and Twitter shapes, several seeds) rather than hand-built
scenarios, so each CI run under ``PYTHONHASHSEED=random`` re-checks the
equivalence on fresh graph/trace/schedule draws.
"""

import functools

import pytest

from repro.core import CONREP, make_policy, placement_sequences, select_cohort
from repro.datasets import synthetic_facebook, synthetic_twitter
from repro.onlinetime import (
    FixedLengthModel,
    SporadicModel,
    compute_schedules,
    packed_schedules,
)
from repro.parallel import ParallelExecutor
from repro.simulator import (
    ConstantLatency,
    DecentralizedOSN,
    ReplayConfig,
    SimulationStats,
    UniformLatency,
    VectorizedReplay,
    replay_trace,
    shard_owners,
)
from repro.simulator.stats import Counter2


@functools.lru_cache(maxsize=None)
def _scenario(kind, seed, model_name):
    """A (dataset, schedules, tracked cohort, placements, packed) bundle."""
    if kind == "facebook":
        ds = synthetic_facebook(260, seed=seed)
    else:
        ds = synthetic_twitter(260, seed=seed)
    model = (
        FixedLengthModel(8) if model_name == "fixed8" else SporadicModel()
    )
    schedules = compute_schedules(ds, model, seed=seed)
    users = select_cohort(ds, 6, max_users=10)
    if not users:
        users = sorted(ds.graph.users())[:10]
    placements = placement_sequences(
        ds,
        schedules,
        users,
        make_policy("maxav"),
        mode=CONREP,
        max_degree=3,
        seed=seed,
    )
    packed = packed_schedules(ds, model, seed=seed)
    return ds, schedules, tuple(users), placements, packed


def _both(kind, seed, model_name, config, packed=False):
    """Run scalar oracle and vectorized engine; return both (stats, events)."""
    ds, schedules, users, placements, packed_arrays = _scenario(
        kind, seed, model_name
    )
    osn = DecentralizedOSN(
        ds, schedules, placements, config=config, tracked_profiles=users
    )
    scalar = osn.run()
    engine = VectorizedReplay(
        ds,
        schedules,
        placements,
        config=config,
        tracked_profiles=users,
        packed=packed_arrays if packed else None,
    )
    vector = engine.run()
    return (scalar, osn.sim.events_executed), (vector, engine.events_replayed)


def _assert_identical(scalar_pair, vector_pair):
    (scalar, scalar_events) = scalar_pair
    (vector, vector_events) = vector_pair
    assert vector.to_dict() == scalar.to_dict()
    assert vector_events == scalar_events


class TestScalarOracleIdentity:
    """VectorizedReplay == DecentralizedOSN, field for field."""

    @pytest.mark.parametrize("kind", ["facebook", "twitter"])
    @pytest.mark.parametrize("seed", [3, 11, 42])
    def test_base_config(self, kind, seed):
        _assert_identical(
            *_both(kind, seed, "fixed8", ReplayConfig(days=2))
        )

    @pytest.mark.parametrize("seed", [5, 17])
    def test_sporadic_model(self, seed):
        _assert_identical(
            *_both("facebook", seed, "sporadic", ReplayConfig(days=2))
        )

    def test_single_day_no_sampling(self):
        config = ReplayConfig(days=1, sample_every=0)
        _assert_identical(*_both("facebook", 7, "fixed8", config))

    def test_reads_disabled(self):
        config = ReplayConfig(days=2, replay_reads=False)
        _assert_identical(*_both("twitter", 7, "fixed8", config))

    def test_cdn(self):
        config = ReplayConfig(days=2, use_cdn=True)
        _assert_identical(*_both("facebook", 9, "fixed8", config))

    @pytest.mark.parametrize(
        "latency",
        [ConstantLatency(120.0), UniformLatency(30.0, 7200.0)],
        ids=["constant", "uniform"],
    )
    def test_latency_models(self, latency):
        config = ReplayConfig(days=3, latency=latency, latency_seed=4)
        _assert_identical(*_both("facebook", 13, "fixed8", config))

    def test_packed_arrays_change_nothing(self):
        config = ReplayConfig(days=2)
        _, plain = _both("facebook", 3, "fixed8", config, packed=False)
        _, packed = _both("facebook", 3, "fixed8", config, packed=True)
        assert packed[0].to_dict() == plain[0].to_dict()
        assert packed[1] == plain[1]


class TestOrchestrationIdentity:
    """Stats are invariant under (backend, shards, jobs)."""

    CONFIG = ReplayConfig(
        days=2, sample_every=1800, latency=UniformLatency(10.0, 3600.0)
    )

    def _reference(self):
        ds, schedules, users, placements, packed = _scenario(
            "facebook", 11, "fixed8"
        )
        return replay_trace(
            ds,
            schedules,
            placements,
            config=self.CONFIG,
            tracked_profiles=users,
        )

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    @pytest.mark.parametrize("shards", [1, 3, 7])
    def test_inline_shards(self, backend, shards):
        ds, schedules, users, placements, packed = _scenario(
            "facebook", 11, "fixed8"
        )
        reference = self._reference()
        outcome = replay_trace(
            ds,
            schedules,
            placements,
            config=self.CONFIG,
            tracked_profiles=users,
            backend=backend,
            shards=shards,
            packed=packed if backend == "numpy" else None,
        )
        assert outcome.stats.to_dict() == reference.stats.to_dict()
        assert outcome.shards == min(shards, len(placements))

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_parallel_jobs(self, backend):
        ds, schedules, users, placements, packed = _scenario(
            "facebook", 11, "fixed8"
        )
        reference = self._reference()
        with ParallelExecutor(jobs=2) as executor:
            outcome = replay_trace(
                ds,
                schedules,
                placements,
                config=self.CONFIG,
                tracked_profiles=users,
                backend=backend,
                shards=4,
                executor=executor,
                packed=packed if backend == "numpy" else None,
            )
        assert outcome.stats.to_dict() == reference.stats.to_dict()

    def test_events_match_across_backends_for_fixed_shards(self):
        # The logical event count is backend-independent for a fixed
        # partition (it grows with the shard count — each shard replays
        # the cohort-wide transition stream — but never with backend).
        ds, schedules, users, placements, packed = _scenario(
            "facebook", 11, "fixed8"
        )
        for shards in (1, 3):
            python = replay_trace(
                ds,
                schedules,
                placements,
                config=self.CONFIG,
                tracked_profiles=users,
                backend="python",
                shards=shards,
            )
            numpy = replay_trace(
                ds,
                schedules,
                placements,
                config=self.CONFIG,
                tracked_profiles=users,
                backend="numpy",
                shards=shards,
                packed=packed,
            )
            assert numpy.events_replayed == python.events_replayed


class TestShardOwners:
    def test_partition_covers_and_is_disjoint(self):
        placements = {u: () for u in range(17)}
        chunks = shard_owners(placements, 5)
        flat = [u for chunk in chunks for u in chunk]
        assert sorted(flat) == sorted(placements)
        assert len(flat) == len(set(flat))
        assert all(chunk for chunk in chunks)

    def test_sorted_and_contiguous(self):
        placements = {u: () for u in (9, 2, 14, 5)}
        chunks = shard_owners(placements, 2)
        assert chunks == ((2, 5), (9, 14))

    def test_never_more_shards_than_owners(self):
        placements = {1: (), 2: ()}
        assert len(shard_owners(placements, 10)) == 2

    def test_at_least_one_shard(self):
        assert shard_owners({1: ()}, 0) == ((1,),)


class TestStatsMerge:
    def _part(self, profile, hits, total, delays):
        stats = SimulationStats()
        stats.availability[profile] = Counter2(hits, total)
        stats.writes[profile] = Counter2(hits, total)
        for d in delays:
            stats.add_propagation(profile, d)
        stats.tracked_profiles = 1
        stats.consistent_profiles = 1
        return stats

    def test_counters_are_sample_weighted(self):
        merged = SimulationStats.merge(
            [self._part(1, 1, 4, []), self._part(2, 3, 4, [])]
        )
        # Two profiles, same key space disjoint: rates survive per profile.
        assert merged.availability[1].rate == 0.25
        assert merged.availability[2].rate == 0.75
        # Same profile in both parts: hit/total pairs sum (weighted rate).
        overlap = SimulationStats.merge(
            [self._part(1, 1, 4, []), self._part(1, 3, 4, [])]
        )
        assert overlap.availability[1].hits == 4
        assert overlap.availability[1].total == 8
        assert overlap.tracked_profiles == 2

    def test_disjoint_merge_order_independent(self):
        a = self._part(1, 1, 2, [0.5, 1.5])
        b = self._part(2, 2, 2, [2.5])
        ab = SimulationStats.merge([a, b])
        ba = SimulationStats.merge([b, a])
        # Flat views re-sort by profile, so order leaves no trace.
        assert ab.to_dict() == ba.to_dict() or (
            ab.propagation_delays_hours == ba.propagation_delays_hours
        )
        assert ab.propagation_delays_hours == [0.5, 1.5, 2.5]

    def test_merge_of_nothing_is_empty(self):
        merged = SimulationStats.merge([])
        assert merged.to_dict() == SimulationStats().to_dict()

    def test_json_round_trip_exact(self):
        import json

        stats = self._part(3, 5, 9, [0.1, 2.7, 3.14159])
        stats.add_staleness(3, 2)
        stats.add_observed(3, 1.25)
        stats.add_owner_delay(3, 0.75)
        stats.undelivered_to_owner = 1
        stats.incomplete_updates = 2
        wire = json.loads(json.dumps(stats.to_dict()))
        restored = SimulationStats.from_dict(wire)
        assert restored.to_dict() == stats.to_dict()
        assert restored.propagation_delays_hours == [0.1, 2.7, 3.14159]
        assert restored.read_staleness == [2]
