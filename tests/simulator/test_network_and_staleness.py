"""Tests for network latency models and read (feed) staleness."""

import random

import pytest

from repro.datasets import Activity, ActivityTrace, Dataset
from repro.graph import SocialGraph
from repro.simulator import (
    ConstantLatency,
    DecentralizedOSN,
    NoLatency,
    ReplayConfig,
    UniformLatency,
)
from repro.timeline import HOUR_SECONDS, IntervalSet


def _hours(start, end):
    return IntervalSet([(start * HOUR_SECONDS, end * HOUR_SECONDS)])


def _star_dataset(num_friends, activities=()):
    g = SocialGraph()
    for f in range(1, num_friends + 1):
        g.add_edge(0, f)
    return Dataset("t", "facebook", g, ActivityTrace(activities))


class TestLatencyModels:
    def test_no_latency(self):
        assert NoLatency().sample(random.Random(0)) == 0.0
        assert "no-latency" in NoLatency().describe()

    def test_constant(self):
        model = ConstantLatency(2.5)
        assert model.sample(random.Random(0)) == 2.5
        assert "2.5" in model.describe()
        with pytest.raises(ValueError):
            ConstantLatency(-1)

    def test_uniform(self):
        model = UniformLatency(1.0, 3.0)
        rng = random.Random(1)
        draws = [model.sample(rng) for _ in range(100)]
        assert all(1.0 <= d <= 3.0 for d in draws)
        assert len(set(draws)) > 1
        with pytest.raises(ValueError):
            UniformLatency(3.0, 1.0)
        with pytest.raises(ValueError):
            UniformLatency(-1.0, 1.0)


class TestLatencyInReplay:
    def _acts(self):
        return [
            Activity(timestamp=int(0.5 * HOUR_SECONDS), creator=1, receiver=0)
        ]

    def _schedules(self):
        # Owner [0,2), replica overlaps [1,3).
        return {0: _hours(0, 2), 1: _hours(1, 3)}

    def test_small_latency_delays_arrival(self):
        ds = _star_dataset(1, self._acts())
        instant = DecentralizedOSN(
            ds,
            self._schedules(),
            {0: (1,)},
            config=ReplayConfig(days=2, sample_every=0, replay_reads=False),
        ).run()
        delayed = DecentralizedOSN(
            ds,
            self._schedules(),
            {0: (1,)},
            config=ReplayConfig(
                days=2,
                sample_every=0,
                replay_reads=False,
                latency=ConstantLatency(60.0),
            ),
        ).run()
        assert delayed.incomplete_updates == 0
        assert (
            delayed.propagation_delays_hours[0]
            == pytest.approx(instant.propagation_delays_hours[0] + 60 / 3600)
        )

    def test_latency_outliving_every_window_never_completes(self):
        # The shared window is 1 h (sync fires when the replica comes
        # online at 01:00, owner leaves at 02:00... replica window ends
        # 03:00, transfer needs the DST online at arrival).  A 2 h
        # latency arrives exactly as the replica goes offline — and every
        # daily retry hits the same wall: atomic transfers don't resume,
        # so the update never completes.  This is the latency regime the
        # model exposes.
        ds = _star_dataset(1, self._acts())
        stats = DecentralizedOSN(
            ds,
            self._schedules(),
            {0: (1,)},
            config=ReplayConfig(
                days=3,
                sample_every=0,
                replay_reads=False,
                latency=ConstantLatency(2 * HOUR_SECONDS),
            ),
        ).run()
        assert stats.incomplete_updates == 1
        assert not stats.propagation_delays_hours

    def test_latency_within_window_completes_with_offset(self):
        ds = _star_dataset(1, self._acts())
        stats = DecentralizedOSN(
            ds,
            self._schedules(),
            {0: (1,)},
            config=ReplayConfig(
                days=2,
                sample_every=0,
                replay_reads=False,
                latency=ConstantLatency(0.5 * HOUR_SECONDS),
            ),
        ).run()
        assert stats.incomplete_updates == 0
        # Sync fires at 01:00 (replica online), arrival 01:30 -> 1 h
        # after the 00:30 post.
        assert stats.propagation_delays_hours[0] > 0.9

    def test_zero_latency_model_equals_default(self):
        ds = _star_dataset(1, self._acts())
        a = DecentralizedOSN(
            ds,
            self._schedules(),
            {0: (1,)},
            config=ReplayConfig(days=2, sample_every=0, replay_reads=False),
        ).run()
        b = DecentralizedOSN(
            ds,
            self._schedules(),
            {0: (1,)},
            config=ReplayConfig(
                days=2,
                sample_every=0,
                replay_reads=False,
                latency=ConstantLatency(0.0),
            ),
        ).run()
        assert (
            a.propagation_delays_hours == b.propagation_delays_hours
        )


class TestLostTransferRetry:
    """A transfer lost outside the window is retried at the next one."""

    def _run(self, config):
        # Owner [0,5); replica has two windows, [1,2.25) and [4,6.5).
        # With a 2 h latency the first sync (fired 01:00 when the replica
        # arrives) lands at 03:00 — inside the replica's gap, so the
        # transfer is lost.  The replica's return at 04:00 triggers the
        # anti-entropy retry: the resend lands at 06:00, inside the
        # second window.
        ds = _star_dataset(
            1,
            [Activity(timestamp=int(0.5 * HOUR_SECONDS), creator=1, receiver=0)],
        )
        schedules = {
            0: _hours(0, 5),
            1: IntervalSet(
                [
                    (1 * HOUR_SECONDS, 2.25 * HOUR_SECONDS),
                    (4 * HOUR_SECONDS, 6.5 * HOUR_SECONDS),
                ]
            ),
        }
        return ds, schedules, {0: (1,)}, config

    def test_retry_at_next_window_completes(self):
        ds, schedules, placements, config = self._run(
            ReplayConfig(
                days=1,
                sample_every=0,
                replay_reads=False,
                latency=ConstantLatency(2 * HOUR_SECONDS),
            )
        )
        stats = DecentralizedOSN(ds, schedules, placements, config=config).run()
        assert stats.incomplete_updates == 0
        # Posted 00:30, retried sync lands 06:00 -> 5.5 h.
        assert stats.propagation_delays_hours == [pytest.approx(5.5)]

    def test_vectorized_engine_agrees_on_retry_path(self):
        from repro.simulator import VectorizedReplay

        ds, schedules, placements, config = self._run(
            ReplayConfig(
                days=1,
                sample_every=0,
                replay_reads=False,
                latency=ConstantLatency(2 * HOUR_SECONDS),
            )
        )
        scalar = DecentralizedOSN(
            ds, schedules, placements, config=config
        ).run()
        vector = VectorizedReplay(
            ds, schedules, placements, config=config
        ).run()
        assert vector.to_dict() == scalar.to_dict()


class TestCdnUnderLatency:
    def test_cdn_converges_where_p2p_transfer_is_always_lost(self):
        # Same regime as the never-completing test above — every direct
        # transfer outlives the 1 h shared window — but the CDN shadow is
        # synchronous and always online, so the replica pulls the update
        # the moment it arrives at 01:00.
        ds = _star_dataset(
            1,
            [Activity(timestamp=int(0.5 * HOUR_SECONDS), creator=1, receiver=0)],
        )
        schedules = {0: _hours(0, 2), 1: _hours(1, 3)}
        config = ReplayConfig(
            days=3,
            sample_every=0,
            use_cdn=True,
            replay_reads=False,
            latency=ConstantLatency(2 * HOUR_SECONDS),
        )
        stats = DecentralizedOSN(ds, schedules, {0: (1,)}, config=config).run()
        assert stats.incomplete_updates == 0
        assert stats.propagation_delays_hours == [pytest.approx(0.5)]


class TestReplayConfigEdges:
    def test_sample_every_zero_disables_sampling(self):
        config = ReplayConfig(days=1, sample_every=0, replay_reads=False)
        ds = _star_dataset(1)
        stats = DecentralizedOSN(
            ds, {0: _hours(0, 2), 1: _hours(1, 3)}, {0: (1,)}, config=config
        ).run()
        assert stats.availability == {}

    def test_days_one_is_the_minimum(self):
        assert ReplayConfig(days=1).days == 1
        with pytest.raises(ValueError):
            ReplayConfig(days=0)


class TestReadStaleness:
    def test_fresh_replica_gives_zero_staleness(self):
        # Reader 2 comes online while the owner (who holds everything
        # immediately) is online.
        acts = [Activity(timestamp=int(0.2 * HOUR_SECONDS), creator=1, receiver=0)]
        ds = _star_dataset(2, acts)
        schedules = {0: _hours(0, 4), 1: _hours(0, 1), 2: _hours(2, 3)}
        stats = DecentralizedOSN(
            ds,
            schedules,
            {0: ()},
            config=ReplayConfig(days=1, sample_every=0),
        ).run()
        assert stats.read_staleness
        assert stats.mean_read_staleness == 0.0

    def test_stale_replica_counted(self):
        # Update posted at 00:30 to the owner; replica 1 (online [6,8))
        # never overlaps the owner on day 0, so reader 2 reading from
        # replica 1 at 06:00 sees 1 missing update.
        acts = [Activity(timestamp=int(0.5 * HOUR_SECONDS), creator=2, receiver=0)]
        ds = _star_dataset(2, acts)
        schedules = {0: _hours(0, 1), 1: _hours(6, 8), 2: _hours(6, 7)}
        stats = DecentralizedOSN(
            ds,
            schedules,
            {0: (1,)},
            config=ReplayConfig(days=1, sample_every=0),
        ).run()
        assert 1 in stats.read_staleness

    def test_mean_staleness_empty_is_zero(self):
        ds = _star_dataset(1)
        stats = DecentralizedOSN(
            ds,
            {0: _hours(0, 1), 1: _hours(5, 6)},
            {0: ()},
            config=ReplayConfig(days=1, sample_every=0, replay_reads=False),
        ).run()
        assert stats.mean_read_staleness == 0.0
