"""Tests for the discrete-event kernel."""

import pytest

from repro.simulator import SimulationError, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule_at(5.0, order.append, "b")
        sim.schedule_at(1.0, order.append, "a")
        sim.schedule_at(9.0, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_now_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(4.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [4.0]
        assert sim.now == 4.0

    def test_same_time_priority_order(self):
        sim = Simulator()
        order = []
        sim.schedule_at(1.0, order.append, "late", priority=1)
        sim.schedule_at(1.0, order.append, "early", priority=-1)
        sim.schedule_at(1.0, order.append, "mid", priority=0)
        sim.run()
        assert order == ["early", "mid", "late"]

    def test_same_time_same_priority_fifo(self):
        sim = Simulator()
        order = []
        for name in ("first", "second", "third"):
            sim.schedule_at(1.0, order.append, name)
        sim.run()
        assert order == ["first", "second", "third"]

    def test_schedule_in(self):
        sim = Simulator(start_time=10.0)
        seen = []
        sim.schedule_in(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [15.0]

    def test_cannot_schedule_into_past(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule_in(-1.0, lambda: None)

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        order = []

        def chain(n):
            order.append(n)
            if n < 3:
                sim.schedule_in(1.0, chain, n + 1)

        sim.schedule_at(0.0, chain, 0)
        sim.run()
        assert order == [0, 1, 2, 3]
        assert sim.now == 3.0


class TestCancel:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule_at(1.0, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []
        assert sim.events_executed == 0


class TestRunBounds:
    def test_until_stops_and_advances_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, fired.append, "in")
        sim.schedule_at(100.0, fired.append, "out")
        sim.run(until=50.0)
        assert fired == ["in"]
        assert sim.now == 50.0
        assert sim.pending == 1

    def test_until_inclusive(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(50.0, fired.append, "edge")
        sim.run(until=50.0)
        assert fired == ["edge"]

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule_at(float(i), fired.append, i)
        sim.run(max_events=4)
        assert fired == [0, 1, 2, 3]

    def test_step_returns_false_when_empty(self):
        sim = Simulator()
        assert sim.step() is False

    def test_events_executed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule_at(float(i), lambda: None)
        sim.run()
        assert sim.events_executed == 5
