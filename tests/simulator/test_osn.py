"""Integration tests: the DES replay against hand-built scenarios and
against the closed-form metrics of repro.core."""

import functools

import pytest

from repro.core import (
    CONREP,
    actual_propagation_delay_hours,
    evaluate_user,
    make_policy,
    placement_sequences,
    select_cohort,
)
from repro.core.connectivity import ReplicaGroup
from repro.datasets import Activity, ActivityTrace, Dataset, synthetic_facebook
from repro.graph import SocialGraph
from repro.onlinetime import FixedLengthModel, compute_schedules
from repro.simulator import DecentralizedOSN, ReplayConfig
from repro.timeline import HOUR_SECONDS, IntervalSet


def _hours(start, end):
    return IntervalSet([(start * HOUR_SECONDS, end * HOUR_SECONDS)])


def _star_dataset(num_friends, activities=()):
    g = SocialGraph()
    for f in range(1, num_friends + 1):
        g.add_edge(0, f)
    return Dataset("t", "facebook", g, ActivityTrace(activities))


class TestReplayConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ReplayConfig(days=0)
        with pytest.raises(ValueError):
            ReplayConfig(sample_every=-1)


class TestWriteServing:
    def test_write_served_when_replica_online(self):
        acts = [Activity(timestamp=5 * HOUR_SECONDS, creator=1, receiver=0)]
        ds = _star_dataset(1, acts)
        schedules = {0: _hours(0, 2), 1: _hours(4, 6)}
        osn = DecentralizedOSN(
            ds,
            schedules,
            {0: (1,)},
            config=ReplayConfig(days=1, sample_every=0, replay_reads=False),
        )
        stats = osn.run()
        assert stats.write_service_rate(0) == 1.0

    def test_write_fails_when_nobody_online(self):
        acts = [Activity(timestamp=12 * HOUR_SECONDS, creator=1, receiver=0)]
        ds = _star_dataset(1, acts)
        schedules = {0: _hours(0, 2), 1: _hours(4, 6)}
        osn = DecentralizedOSN(
            ds,
            schedules,
            {0: (1,)},
            config=ReplayConfig(days=1, sample_every=0, replay_reads=False),
        )
        stats = osn.run()
        assert stats.write_service_rate(0) == 0.0
        assert not stats.propagation_delays_hours


class TestPropagationDelay:
    def test_update_reaches_all_replicas_via_overlap(self):
        # Owner [0,2), replica A [1,3), replica B [2.5,4): update posted at
        # 00:30 reaches A at 01:00 (A online overlap), B at 02:30.
        acts = [
            Activity(timestamp=int(0.5 * HOUR_SECONDS), creator=1, receiver=0)
        ]
        ds = _star_dataset(2, acts)
        schedules = {0: _hours(0, 2), 1: _hours(1, 3), 2: _hours(2.5, 4)}
        osn = DecentralizedOSN(
            ds,
            schedules,
            {0: (1, 2)},
            config=ReplayConfig(days=2, sample_every=0, replay_reads=False),
        )
        stats = osn.run()
        assert stats.incomplete_updates == 0
        assert stats.consistent_profiles == stats.tracked_profiles
        assert stats.propagation_delays_hours == [pytest.approx(2.0)]

    def test_empirical_delay_bounded_by_analytic_worst_case(self):
        acts = [
            Activity(
                timestamp=int((0.25 + i * 0.25) * HOUR_SECONDS),
                creator=1,
                receiver=0,
            )
            for i in range(6)
        ]
        ds = _star_dataset(2, acts)
        schedules = {0: _hours(0, 2), 1: _hours(1, 3), 2: _hours(2.5, 4)}
        group = ReplicaGroup(
            owner=0, replicas=(1, 2), schedules=schedules
        )
        bound = actual_propagation_delay_hours(group)
        osn = DecentralizedOSN(
            ds,
            schedules,
            {0: (1, 2)},
            config=ReplayConfig(days=3, sample_every=0, replay_reads=False),
        )
        stats = osn.run()
        assert stats.propagation_delays_hours
        assert stats.max_propagation_delay_hours <= bound + 1e-6

    def test_observed_leq_actual(self):
        acts = [
            Activity(timestamp=int(0.5 * HOUR_SECONDS), creator=1, receiver=0)
        ]
        ds = _star_dataset(2, acts)
        schedules = {0: _hours(0, 2), 1: _hours(1, 3), 2: _hours(2.5, 4)}
        osn = DecentralizedOSN(
            ds,
            schedules,
            {0: (1, 2)},
            config=ReplayConfig(days=2, sample_every=0, replay_reads=False),
        )
        stats = osn.run()
        assert stats.observed_delays_hours
        assert max(stats.observed_delays_hours) <= max(
            stats.propagation_delays_hours
        )


class TestCdn:
    def test_cdn_bridges_disconnected_replicas(self):
        acts = [
            Activity(timestamp=int(0.5 * HOUR_SECONDS), creator=1, receiver=0)
        ]
        ds = _star_dataset(1, acts)
        # Owner [0,2) and replica [10,12) never overlap.
        schedules = {0: _hours(0, 2), 1: _hours(10, 12)}
        without = DecentralizedOSN(
            ds,
            schedules,
            {0: (1,)},
            config=ReplayConfig(days=2, sample_every=0, replay_reads=False),
        ).run()
        assert without.incomplete_updates == 1
        with_cdn = DecentralizedOSN(
            ds,
            schedules,
            {0: (1,)},
            config=ReplayConfig(
                days=2, sample_every=0, use_cdn=True, replay_reads=False
            ),
        ).run()
        assert with_cdn.incomplete_updates == 0
        # Posted 00:30, replica pulls from CDN at 10:00 -> 9.5h delay.
        assert with_cdn.propagation_delays_hours == [pytest.approx(9.5)]


class TestAvailabilitySampling:
    def test_matches_schedule_union(self):
        ds = _star_dataset(1)
        schedules = {0: _hours(0, 6), 1: _hours(12, 18)}
        osn = DecentralizedOSN(
            ds,
            schedules,
            {0: (1,)},
            config=ReplayConfig(days=2, sample_every=600, replay_reads=False),
        )
        stats = osn.run()
        # Union is 12h/day = 0.5 availability.
        assert stats.availability_of(0) == pytest.approx(0.5, abs=0.02)


class TestReadReplay:
    def test_reads_recorded_for_friends(self):
        ds = _star_dataset(2)
        schedules = {0: _hours(0, 6), 1: _hours(3, 9), 2: _hours(12, 18)}
        osn = DecentralizedOSN(
            ds,
            schedules,
            {0: ()},
            config=ReplayConfig(days=1, sample_every=0),
        )
        stats = osn.run()
        # Friend 1 comes online at 03:00 (owner online) -> success;
        # friend 2 at 12:00 (owner offline) -> failure.
        assert stats.reads[0].total == 2
        assert stats.reads[0].hits == 1


class TestCrossValidation:
    """DES measurements agree with the closed-form §II-C metrics."""

    @functools.lru_cache(maxsize=1)
    def _setup(self):
        ds = synthetic_facebook(500, seed=21)
        model = FixedLengthModel(8)
        schedules = compute_schedules(ds, model, seed=0)
        users = select_cohort(ds, 10, max_users=8)
        if not users:  # tiny dataset fallback
            users = select_cohort(ds, 8, max_users=8)
        policy = make_policy("maxav")
        sequences = placement_sequences(
            ds, schedules, users, policy, mode=CONREP, max_degree=4, seed=0
        )
        return ds, schedules, users, sequences

    def test_empirical_availability_matches_analytic(self):
        ds, schedules, users, sequences = self._setup()
        osn = DecentralizedOSN(
            ds,
            schedules,
            sequences,
            config=ReplayConfig(days=1, sample_every=300, replay_reads=False),
            tracked_profiles=users,
        )
        stats = osn.run()
        for user in users:
            analytic = evaluate_user(ds, schedules, user, sequences[user])
            assert stats.availability_of(user) == pytest.approx(
                analytic.availability, abs=0.03
            )

    def test_empirical_write_rate_matches_aod_activity(self):
        ds, schedules, users, sequences = self._setup()
        osn = DecentralizedOSN(
            ds,
            schedules,
            sequences,
            config=ReplayConfig(days=1, sample_every=0, replay_reads=False),
            tracked_profiles=users,
        )
        stats = osn.run()
        for user in users:
            analytic = evaluate_user(ds, schedules, user, sequences[user])
            if stats.writes.get(user) and stats.writes[user].total >= 5:
                assert stats.write_service_rate(user) == pytest.approx(
                    analytic.aod_activity, abs=0.02
                )

    def test_empirical_delay_bounded_by_analytic(self):
        ds, schedules, users, sequences = self._setup()
        osn = DecentralizedOSN(
            ds,
            schedules,
            sequences,
            config=ReplayConfig(days=3, sample_every=0, replay_reads=False),
            tracked_profiles=users,
        )
        stats = osn.run()
        worst_analytic = max(
            evaluate_user(
                ds, schedules, u, sequences[u]
            ).delay_hours_actual
            for u in users
        )
        assert stats.max_propagation_delay_hours <= worst_analytic + 1e-6
