"""Tests for the owner-notification delay (paper §II requirement)."""

import pytest

from repro.datasets import Activity, ActivityTrace, Dataset
from repro.graph import SocialGraph
from repro.simulator import DecentralizedOSN, ReplayConfig
from repro.timeline import HOUR_SECONDS, IntervalSet


def _hours(start, end):
    return IntervalSet([(start * HOUR_SECONDS, end * HOUR_SECONDS)])


def _star_dataset(num_friends, activities=()):
    g = SocialGraph()
    for f in range(1, num_friends + 1):
        g.add_edge(0, f)
    return Dataset("t", "facebook", g, ActivityTrace(activities))


class TestOwnerDelivery:
    def test_post_while_owner_online_is_instant(self):
        acts = [Activity(timestamp=HOUR_SECONDS, creator=1, receiver=0)]
        ds = _star_dataset(1, acts)
        schedules = {0: _hours(0, 2), 1: _hours(0, 2)}
        stats = DecentralizedOSN(
            ds,
            schedules,
            {0: (1,)},
            config=ReplayConfig(days=1, sample_every=0, replay_reads=False),
        ).run()
        assert stats.owner_delivery_delays_hours == [0.0]
        assert stats.undelivered_to_owner == 0

    def test_post_to_replica_reaches_owner_at_next_overlap(self):
        # Post at 05:00 lands on replica 1 (owner offline); owner comes
        # online [0,2) the NEXT day, overlapping replica [1,6): delivered
        # at 25:00 -> 20 hours after creation.
        acts = [Activity(timestamp=5 * HOUR_SECONDS, creator=1, receiver=0)]
        ds = _star_dataset(1, acts)
        schedules = {0: _hours(0, 2), 1: _hours(1, 6)}
        stats = DecentralizedOSN(
            ds,
            schedules,
            {0: (1,)},
            config=ReplayConfig(days=2, sample_every=0, replay_reads=False),
        ).run()
        assert stats.owner_delivery_delays_hours == [pytest.approx(20.0)]
        assert stats.mean_owner_delivery_delay_hours == pytest.approx(20.0)
        assert stats.max_owner_delivery_delay_hours == pytest.approx(20.0)

    def test_undelivered_counted(self):
        # Replica never overlaps the owner: the owner never learns.
        acts = [Activity(timestamp=5 * HOUR_SECONDS, creator=1, receiver=0)]
        ds = _star_dataset(1, acts)
        schedules = {0: _hours(0, 2), 1: _hours(4, 6)}
        stats = DecentralizedOSN(
            ds,
            schedules,
            {0: (1,)},
            config=ReplayConfig(days=3, sample_every=0, replay_reads=False),
        ).run()
        assert stats.undelivered_to_owner == 1
        assert stats.owner_delivery_delays_hours == []

    def test_empty_stats_zero_means(self):
        ds = _star_dataset(1)
        stats = DecentralizedOSN(
            ds,
            {0: _hours(0, 1), 1: _hours(1, 2)},
            {0: (1,)},
            config=ReplayConfig(days=1, sample_every=0, replay_reads=False),
        ).run()
        assert stats.mean_owner_delivery_delay_hours == 0.0
        assert stats.max_owner_delivery_delay_hours == 0.0
