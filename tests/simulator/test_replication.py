"""Tests for replica stores and anti-entropy, incl. convergence property."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator import ProfileReplication, ReplicaStore, Update


def _update(profile=1, origin=2, seq=1, t=0.0):
    return Update(profile=profile, origin=origin, seq=seq, created_at=t)


class TestReplicaStore:
    def test_apply_new(self):
        store = ReplicaStore(profile=1, host=5)
        assert store.apply(_update(), now=3.0)
        assert len(store) == 1
        assert (2, 1) in store
        assert store.arrival_times[(2, 1)] == 3.0

    def test_apply_duplicate_is_noop(self):
        store = ReplicaStore(profile=1, host=5)
        store.apply(_update(), now=3.0)
        assert not store.apply(_update(), now=9.0)
        assert store.arrival_times[(2, 1)] == 3.0  # first arrival kept

    def test_apply_wrong_profile_rejected(self):
        store = ReplicaStore(profile=1, host=5)
        with pytest.raises(ValueError):
            store.apply(_update(profile=2), now=0.0)

    def test_updates_sorted_by_creation(self):
        store = ReplicaStore(profile=1, host=5)
        store.apply(_update(seq=2, t=10.0), now=11.0)
        store.apply(_update(seq=1, t=5.0), now=12.0)
        assert [u.seq for u in store.updates] == [1, 2]

    def test_version_vector_counts_per_origin(self):
        store = ReplicaStore(profile=1, host=5)
        store.apply(_update(origin=2, seq=1), now=0)
        store.apply(_update(origin=2, seq=2), now=0)
        store.apply(_update(origin=3, seq=3), now=0)
        assert store.version_vector() == {2: 2, 3: 1}

    def test_missing_from(self):
        a = ReplicaStore(profile=1, host=5)
        b = ReplicaStore(profile=1, host=6)
        u1, u2 = _update(seq=1), _update(seq=2)
        a.apply(u1, now=0)
        b.apply(u1, now=0)
        b.apply(u2, now=0)
        assert a.missing_from(b) == [u2]
        assert b.missing_from(a) == []

    def test_synchronized_with(self):
        a = ReplicaStore(profile=1, host=5)
        b = ReplicaStore(profile=1, host=6)
        assert a.synchronized_with(b)
        a.apply(_update(), now=0)
        assert not a.synchronized_with(b)


class TestProfileReplication:
    def test_seq_monotonic(self):
        group = ProfileReplication(1, hosts=[1, 2])
        assert group.next_seq() < group.next_seq()

    def test_sync_pair_bidirectional(self):
        group = ProfileReplication(1, hosts=[1, 2])
        group.store_of(1).apply(_update(seq=1), now=0)
        group.store_of(2).apply(_update(seq=2), now=0)
        moved = group.sync_pair(1, 2, now=5.0)
        assert moved == 2
        assert group.is_consistent()

    def test_full_replication_time(self):
        group = ProfileReplication(1, hosts=[1, 2])
        u = _update(seq=1, t=0.0)
        group.store_of(1).apply(u, now=0.0)
        assert group.full_replication_time(u.uid) is None
        group.sync_pair(1, 2, now=7.0)
        assert group.full_replication_time(u.uid) == 7.0

    def test_is_consistent_initially(self):
        assert ProfileReplication(1, hosts=[1, 2, 3]).is_consistent()


class TestEventualConsistency:
    """Property: any sequence of writes followed by enough pairwise syncs
    along a connected sync topology converges every store."""

    @settings(max_examples=40, deadline=None)
    @given(
        num_hosts=st.integers(min_value=2, max_value=5),
        writes=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=4),  # host index
                st.integers(min_value=0, max_value=100),  # pseudo time
            ),
            max_size=15,
        ),
        seed=st.integers(min_value=0, max_value=999),
    )
    def test_chain_sync_converges(self, num_hosts, writes, seed):
        hosts = list(range(1, num_hosts + 1))
        group = ProfileReplication(profile=1, hosts=hosts)
        for host_idx, t in writes:
            host = hosts[host_idx % num_hosts]
            u = Update(
                profile=1, origin=host, seq=group.next_seq(), created_at=t
            )
            group.store_of(host).apply(u, now=t)
        # A forward then backward sweep along a chain topology guarantees
        # full convergence (left- and right-propagation respectively).
        rng = random.Random(seed)
        order = hosts[:]
        rng.shuffle(order)
        for a, b in zip(order, order[1:]):
            group.sync_pair(a, b, now=1000.0)
        backward = list(reversed(order))
        for a, b in zip(backward, backward[1:]):
            group.sync_pair(a, b, now=1001.0)
        assert group.is_consistent()

    def test_sync_idempotent(self):
        group = ProfileReplication(1, hosts=[1, 2])
        group.store_of(1).apply(_update(seq=1), now=0)
        group.sync_pair(1, 2, now=1.0)
        assert group.sync_pair(1, 2, now=2.0) == 0
