"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig3"])
        assert args.experiment == "fig3"
        assert args.scale == "bench"
        assert args.output is None

    def test_run_rejects_bad_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig3", "--scale", "huge"])

    def test_generate_requires_paths(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate"])


class TestCommands:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out
        assert "table1" in out
        assert "x1" in out

    def test_stats(self, capsys):
        assert main(["stats", "--users", "400", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "facebook" in out
        assert "users" in out

    def test_stats_twitter(self, capsys):
        assert (
            main(["stats", "--dataset", "twitter", "--users", "400"]) == 0
        )
        assert "twitter" in capsys.readouterr().out

    def test_generate_roundtrip(self, tmp_path, capsys):
        graph_path = tmp_path / "g.txt"
        trace_path = tmp_path / "t.txt"
        rc = main(
            [
                "generate",
                "--users",
                "400",
                "--seed",
                "1",
                "--graph",
                str(graph_path),
                "--trace",
                str(trace_path),
            ]
        )
        assert rc == 0
        assert graph_path.exists()
        assert trace_path.exists()
        # The generated files reload through the public loaders.
        from repro.datasets import load_facebook_wall_trace
        from repro.graph import read_friendship_graph

        graph = read_friendship_graph(str(graph_path))
        assert graph.num_users > 0
        # Trace file format: creator receiver timestamp (one per line).
        lines = [
            line
            for line in trace_path.read_text().splitlines()
            if line and not line.startswith("#")
        ]
        assert len(lines) > 100
        assert len(lines[0].split()) == 3

    def test_simulate_small(self, capsys):
        rc = main(
            [
                "simulate",
                "--users",
                "400",
                "--degree",
                "6",
                "--cohort",
                "4",
                "--k",
                "2",
                "--days",
                "1",
            ]
        )
        out = capsys.readouterr().out + capsys.readouterr().err
        if rc == 0:
            assert "write service" in out
        else:
            # No degree-6 users in this tiny dataset: graceful error.
            assert rc == 1

    def test_simulate_unknown_degree_fails_gracefully(self, capsys):
        rc = main(
            ["simulate", "--users", "400", "--degree", "9999", "--days", "1"]
        )
        assert rc == 1

    def test_run_table1_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.txt"
        rc = main(["run", "table1", "--output", str(out_file)])
        assert rc == 0
        text = out_file.read_text()
        assert "table1" in text
        assert "Measured" in text

    def test_run_with_plot(self, tmp_path):
        out_file = tmp_path / "plot.txt"
        rc = main(["run", "x1", "--plot", "--output", str(out_file)])
        assert rc == 0
        text = out_file.read_text()
        # The aggregate table is numeric and must render as a chart.
        assert "|" in text
