"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig3"])
        assert args.experiment == "fig3"
        assert args.scale == "bench"
        assert args.output is None

    def test_run_rejects_bad_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig3", "--scale", "huge"])

    def test_generate_requires_paths(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate"])

    def test_batch_defaults(self):
        args = build_parser().parse_args(["batch", "out"])
        assert args.out_dir == "out"
        assert args.ids == []
        assert not args.resume
        assert not args.strict
        assert args.chunk_timeout is None
        assert args.retry_attempts is None

    def test_batch_supervision_flags(self):
        args = build_parser().parse_args(
            [
                "batch",
                "out",
                "fig3",
                "fig5",
                "--resume",
                "--strict",
                "--chunk-timeout",
                "2.5",
                "--retry-attempts",
                "5",
            ]
        )
        assert args.ids == ["fig3", "fig5"]
        assert args.resume and args.strict
        assert args.chunk_timeout == 2.5
        assert args.retry_attempts == 5

    def test_shards_flag_parses(self):
        assert build_parser().parse_args(["run", "fig3"]).shards == 1
        assert (
            build_parser()
            .parse_args(["run", "fig3", "--shards", "4"])
            .shards
            == 4
        )
        assert (
            build_parser().parse_args(["batch", "out", "--shards", "8"]).shards
            == 8
        )

    def test_shards_must_be_positive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig3", "--shards", "0"])

    def test_chunk_timeout_must_be_positive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig3", "--chunk-timeout", "0"])

    def test_hidden_fault_knobs_parse(self):
        args = build_parser().parse_args(
            ["batch", "out", "--fault-crash", "0.1", "--fault-seed", "7"]
        )
        assert args.fault_crash == 0.1
        assert args.fault_seed == 7
        # Hidden: absent from the rendered help text.
        parser = build_parser()
        sub = next(
            a for a in parser._subparsers._group_actions
        ).choices["batch"]
        assert "--fault-crash" not in sub.format_help()
        assert "--chunk-timeout" in sub.format_help()


class TestCommands:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out
        assert "table1" in out
        assert "x1" in out

    def test_stats(self, capsys):
        assert main(["stats", "--users", "400", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "facebook" in out
        assert "users" in out

    def test_stats_twitter(self, capsys):
        assert (
            main(["stats", "--dataset", "twitter", "--users", "400"]) == 0
        )
        assert "twitter" in capsys.readouterr().out

    def test_generate_roundtrip(self, tmp_path, capsys):
        graph_path = tmp_path / "g.txt"
        trace_path = tmp_path / "t.txt"
        rc = main(
            [
                "generate",
                "--users",
                "400",
                "--seed",
                "1",
                "--graph",
                str(graph_path),
                "--trace",
                str(trace_path),
            ]
        )
        assert rc == 0
        assert graph_path.exists()
        assert trace_path.exists()
        # The generated files reload through the public loaders.
        from repro.datasets import load_facebook_wall_trace
        from repro.graph import read_friendship_graph

        graph = read_friendship_graph(str(graph_path))
        assert graph.num_users > 0
        # Trace file format: creator receiver timestamp (one per line).
        lines = [
            line
            for line in trace_path.read_text().splitlines()
            if line and not line.startswith("#")
        ]
        assert len(lines) > 100
        assert len(lines[0].split()) == 3

    def test_simulate_small(self, capsys):
        rc = main(
            [
                "simulate",
                "--users",
                "400",
                "--degree",
                "6",
                "--cohort",
                "4",
                "--k",
                "2",
                "--days",
                "1",
            ]
        )
        out = capsys.readouterr().out + capsys.readouterr().err
        if rc == 0:
            assert "write service" in out
        else:
            # No degree-6 users in this tiny dataset: graceful error.
            assert rc == 1

    def test_simulate_unknown_degree_fails_gracefully(self, capsys):
        rc = main(
            ["simulate", "--users", "400", "--degree", "9999", "--days", "1"]
        )
        assert rc == 1

    def test_run_table1_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.txt"
        rc = main(["run", "table1", "--output", str(out_file)])
        assert rc == 0
        text = out_file.read_text()
        assert "table1" in text
        assert "Measured" in text

    def test_run_with_plot(self, tmp_path):
        out_file = tmp_path / "plot.txt"
        rc = main(["run", "x1", "--plot", "--output", str(out_file)])
        assert rc == 0
        text = out_file.read_text()
        # The aggregate table is numeric and must render as a chart.
        assert "|" in text


class TestBatchCommand:
    def test_batch_writes_outputs_and_journal(self, tmp_path, capsys):
        rc = main(["batch", str(tmp_path), "table1", "x1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "[batch] 2 experiments" in out
        for name in (
            "table1.txt",
            "table1.json",
            "x1.txt",
            "x1.json",
            "journal.json",
            "batch_summary.json",
        ):
            assert (tmp_path / name).exists()
        journal = json.loads((tmp_path / "journal.json").read_text())
        assert journal["experiments"] == {"table1": "done", "x1": "done"}

    def test_batch_resume_skips_done(self, tmp_path, capsys):
        assert main(["batch", str(tmp_path), "table1"]) == 0
        capsys.readouterr()
        assert main(["batch", str(tmp_path), "table1", "--resume"]) == 0
        out = capsys.readouterr().out
        assert "skipped 1 already-done" in out
        summary = json.loads((tmp_path / "batch_summary.json").read_text())
        assert summary["skipped"] == ["table1"]
        assert summary["num_experiments"] == 0

    def test_batch_unknown_experiment_fails_with_hint(self, tmp_path, capsys):
        rc = main(["batch", str(tmp_path), "nope"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "batch failed" in err
        assert "--resume" in err
        journal = json.loads((tmp_path / "journal.json").read_text())
        assert journal["experiments"]["nope"] == "failed"

    def test_batch_with_injected_errors_still_succeeds(self, tmp_path):
        # Serial supervision retries injected first-attempt errors; the
        # outputs must be identical to a fault-free run.
        clean = tmp_path / "clean"
        faulted = tmp_path / "faulted"
        assert main(["batch", str(clean), "x1"]) == 0
        assert (
            main(
                [
                    "batch",
                    str(faulted),
                    "x1",
                    "--fault-error",
                    "1.0",
                    "--fault-seed",
                    "3",
                ]
            )
            == 0
        )
        a = json.loads((clean / "x1.json").read_text())
        b = json.loads((faulted / "x1.json").read_text())
        a.pop("timings")
        b.pop("timings")
        assert a == b


class TestQueryCommand:
    def test_query_parser_defaults(self):
        args = build_parser().parse_args(["query"])
        assert args.dataset == "facebook"
        assert args.policy == "maxav"
        assert args.mode == "conrep"
        assert args.k == 3
        assert args.engine == "incremental"
        assert args.backend == "python"
        assert args.user is None

    def test_query_user_flag_repeats(self):
        args = build_parser().parse_args(
            ["query", "--user", "3", "--user", "17"]
        )
        assert args.user == [3, 17]

    def test_query_rejects_bad_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "--mode", "sideways"])

    def test_query_cohort_smoke(self, capsys):
        rc = main(
            [
                "query",
                "--users", "300",
                "--seed", "2",
                "--degree", "6",
                "--cohort", "4",
                "--k", "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "availability" in out
        assert "[query]" in out
        assert "p99" in out

    def test_query_explicit_users_match_library(self, capsys):
        # The CLI must print exactly what the library's plane computes.
        from repro.core import make_policy
        from repro.datasets import synthetic_facebook
        from repro.onlinetime import SporadicModel
        from repro.query import QueryPlane

        dataset = synthetic_facebook(300, seed=2)
        user = sorted(dataset.graph.users())[5]
        expected = QueryPlane(dataset, SporadicModel(), seed=2).evaluate(
            user, make_policy("maxav"), 2
        )
        rc = main(
            [
                "query",
                "--users", "300",
                "--seed", "2",
                "--user", str(user),
                "--k", "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert f"{expected.availability:.3f}" in out
        assert " ".join(str(r) for r in expected.replicas) in out

    def test_query_unknown_degree_fails_gracefully(self, capsys):
        rc = main(
            ["query", "--users", "300", "--degree", "9999"]
        )
        assert rc == 1
        assert "no users of degree" in capsys.readouterr().err

    def test_query_cache_dir_round_trip(self, tmp_path, capsys):
        argv = [
            "query",
            "--users", "300",
            "--seed", "2",
            "--user", "5",
            "--k", "2",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        # Second run serves from the content-addressed store: same table.
        table = lambda text: [
            line for line in text.splitlines() if not line.startswith("[")
        ]
        assert table(first) == table(second)
        assert "1 store hits" in second
