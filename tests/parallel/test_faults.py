"""Tests for the deterministic fault injector."""

import pickle

import pytest

from repro.parallel.faults import (
    CRASH,
    ERROR,
    HANG,
    FaultInjector,
    FaultRule,
    InjectedFault,
)


class TestFaultRule:
    def test_kind_validated(self):
        with pytest.raises(ValueError):
            FaultRule("explode")

    def test_times_validated(self):
        with pytest.raises(ValueError):
            FaultRule(ERROR, times=0)
        FaultRule(ERROR, times=None)  # poison is legal

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            FaultRule(ERROR, probability=1.5)

    def test_item_matching(self):
        rule = FaultRule(ERROR, items=frozenset({7}))
        assert rule.matches([5, 6, 7], attempt=0, seed=0)
        assert not rule.matches([5, 6], attempt=0, seed=0)

    def test_any_chunk_matches_everything(self):
        rule = FaultRule(ERROR)
        assert rule.matches([1], attempt=0, seed=0)
        assert rule.matches([], attempt=0, seed=0)

    def test_times_bounds_attempts(self):
        rule = FaultRule(ERROR, times=2)
        assert rule.matches([1], attempt=0, seed=0)
        assert rule.matches([1], attempt=1, seed=0)
        assert not rule.matches([1], attempt=2, seed=0)

    def test_poison_faults_every_attempt(self):
        rule = FaultRule(ERROR, times=None)
        assert all(rule.matches([1], attempt=a, seed=0) for a in range(50))

    def test_probability_is_deterministic_in_seed(self):
        rule = FaultRule(ERROR, probability=0.5, times=None)
        draws_a = [rule.matches([i], 0, seed=3) for i in range(64)]
        draws_b = [rule.matches([i], 0, seed=3) for i in range(64)]
        assert draws_a == draws_b
        assert any(draws_a) and not all(draws_a)  # actually thinned
        draws_c = [rule.matches([i], 0, seed=4) for i in range(64)]
        assert draws_a != draws_c  # seed actually participates


class TestFaultInjector:
    def test_first_matching_rule_wins(self):
        injector = FaultInjector(
            rules=(
                FaultRule(CRASH, items=frozenset({1})),
                FaultRule(ERROR),
            )
        )
        assert injector.fault_for([1, 2], 0) == CRASH
        assert injector.fault_for([2, 3], 0) == ERROR
        assert injector.fault_for([2, 3], 1) is None

    def test_once_constructor(self):
        injector = FaultInjector.once(crash={1}, hang={2}, error={3})
        assert injector.fault_for([1], 0) == CRASH
        assert injector.fault_for([2], 0) == HANG
        assert injector.fault_for([3], 0) == ERROR
        assert injector.fault_for([4], 0) is None
        assert injector.fault_for([1], 1) is None  # once only

    def test_once_any_chunk(self):
        injector = FaultInjector.once(any_chunk=CRASH)
        assert injector.fault_for([99], 0) == CRASH
        assert injector.fault_for([99], 1) is None

    def test_poison_constructor(self):
        injector = FaultInjector.poison(ERROR, [5])
        assert all(injector.fault_for([5], a) == ERROR for a in range(10))
        assert injector.fault_for([6], 0) is None

    def test_random_faults_deterministic(self):
        a = FaultInjector.random_faults(seed=1, crash=0.3, error=0.3)
        b = FaultInjector.random_faults(seed=1, crash=0.3, error=0.3)
        plan_a = [a.fault_for([i], 0) for i in range(100)]
        plan_b = [b.fault_for([i], 0) for i in range(100)]
        assert plan_a == plan_b
        assert CRASH in plan_a and None in plan_a

    def test_error_fault_raises(self):
        injector = FaultInjector.once(error={1})
        with pytest.raises(InjectedFault):
            injector.apply([1], 0)
        injector.apply([1], 1)  # cleared after the first attempt

    def test_serial_path_ignores_crash_and_hang(self):
        # in_worker=False must never kill or stall the calling process.
        injector = FaultInjector.once(crash={1}, hang={2})
        injector.apply([1], 0, in_worker=False)
        injector.apply([2], 0, in_worker=False)
        with pytest.raises(InjectedFault):
            FaultInjector.once(error={3}).apply([3], 0, in_worker=False)

    def test_hang_seconds_validated(self):
        with pytest.raises(ValueError):
            FaultInjector(hang_seconds=0)

    def test_picklable(self):
        # The injector rides the pool initializer to worker processes.
        injector = FaultInjector.once(crash={1}, error={2}, seed=9)
        clone = pickle.loads(pickle.dumps(injector))
        assert clone == injector
        assert clone.fault_for([1], 0) == CRASH
