"""Tests for the deterministic fault injector."""

import pickle

import pytest

from repro.parallel.faults import (
    CHUNK_KINDS,
    CRASH,
    DISK_KINDS,
    ENOSPC,
    ERROR,
    FAULT_KINDS,
    HANG,
    POISON_QUERY,
    QUERY_KINDS,
    SHM_LEAK,
    SLOW_IO,
    TORN_WRITE,
    FaultInjector,
    FaultRule,
    InjectedFault,
)


class TestFaultRule:
    def test_kind_validated(self):
        with pytest.raises(ValueError):
            FaultRule("explode")

    def test_times_validated(self):
        with pytest.raises(ValueError):
            FaultRule(ERROR, times=0)
        FaultRule(ERROR, times=None)  # poison is legal

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            FaultRule(ERROR, probability=1.5)

    def test_item_matching(self):
        rule = FaultRule(ERROR, items=frozenset({7}))
        assert rule.matches([5, 6, 7], attempt=0, seed=0)
        assert not rule.matches([5, 6], attempt=0, seed=0)

    def test_any_chunk_matches_everything(self):
        rule = FaultRule(ERROR)
        assert rule.matches([1], attempt=0, seed=0)
        assert rule.matches([], attempt=0, seed=0)

    def test_times_bounds_attempts(self):
        rule = FaultRule(ERROR, times=2)
        assert rule.matches([1], attempt=0, seed=0)
        assert rule.matches([1], attempt=1, seed=0)
        assert not rule.matches([1], attempt=2, seed=0)

    def test_poison_faults_every_attempt(self):
        rule = FaultRule(ERROR, times=None)
        assert all(rule.matches([1], attempt=a, seed=0) for a in range(50))

    def test_probability_is_deterministic_in_seed(self):
        rule = FaultRule(ERROR, probability=0.5, times=None)
        draws_a = [rule.matches([i], 0, seed=3) for i in range(64)]
        draws_b = [rule.matches([i], 0, seed=3) for i in range(64)]
        assert draws_a == draws_b
        assert any(draws_a) and not all(draws_a)  # actually thinned
        draws_c = [rule.matches([i], 0, seed=4) for i in range(64)]
        assert draws_a != draws_c  # seed actually participates


class TestFaultInjector:
    def test_first_matching_rule_wins(self):
        injector = FaultInjector(
            rules=(
                FaultRule(CRASH, items=frozenset({1})),
                FaultRule(ERROR),
            )
        )
        assert injector.fault_for([1, 2], 0) == CRASH
        assert injector.fault_for([2, 3], 0) == ERROR
        assert injector.fault_for([2, 3], 1) is None

    def test_once_constructor(self):
        injector = FaultInjector.once(crash={1}, hang={2}, error={3})
        assert injector.fault_for([1], 0) == CRASH
        assert injector.fault_for([2], 0) == HANG
        assert injector.fault_for([3], 0) == ERROR
        assert injector.fault_for([4], 0) is None
        assert injector.fault_for([1], 1) is None  # once only

    def test_once_any_chunk(self):
        injector = FaultInjector.once(any_chunk=CRASH)
        assert injector.fault_for([99], 0) == CRASH
        assert injector.fault_for([99], 1) is None

    def test_poison_constructor(self):
        injector = FaultInjector.poison(ERROR, [5])
        assert all(injector.fault_for([5], a) == ERROR for a in range(10))
        assert injector.fault_for([6], 0) is None

    def test_random_faults_deterministic(self):
        a = FaultInjector.random_faults(seed=1, crash=0.3, error=0.3)
        b = FaultInjector.random_faults(seed=1, crash=0.3, error=0.3)
        plan_a = [a.fault_for([i], 0) for i in range(100)]
        plan_b = [b.fault_for([i], 0) for i in range(100)]
        assert plan_a == plan_b
        assert CRASH in plan_a and None in plan_a

    def test_error_fault_raises(self):
        injector = FaultInjector.once(error={1})
        with pytest.raises(InjectedFault):
            injector.apply([1], 0)
        injector.apply([1], 1)  # cleared after the first attempt

    def test_serial_path_ignores_crash_and_hang(self):
        # in_worker=False must never kill or stall the calling process.
        injector = FaultInjector.once(crash={1}, hang={2})
        injector.apply([1], 0, in_worker=False)
        injector.apply([2], 0, in_worker=False)
        with pytest.raises(InjectedFault):
            FaultInjector.once(error={3}).apply([3], 0, in_worker=False)

    def test_hang_seconds_validated(self):
        with pytest.raises(ValueError):
            FaultInjector(hang_seconds=0)

    def test_picklable(self):
        # The injector rides the pool initializer to worker processes.
        injector = FaultInjector.once(crash={1}, error={2}, seed=9)
        clone = pickle.loads(pickle.dumps(injector))
        assert clone == injector
        assert clone.fault_for([1], 0) == CRASH


class TestFaultSites:
    """Site-filtered dispatch: each injection site sees only its kinds."""

    def test_kind_taxonomy_partitions_fault_kinds(self):
        sites = CHUNK_KINDS + DISK_KINDS + QUERY_KINDS
        assert sorted(sites) == sorted(FAULT_KINDS)
        assert len(set(sites)) == len(sites)  # disjoint

    def test_fault_for_filters_by_site(self):
        injector = FaultInjector(
            rules=(
                FaultRule(TORN_WRITE, times=None),
                FaultRule(ERROR, times=None),
            )
        )
        # None = back-compat: every rule considered, first match wins.
        assert injector.fault_for([1], 0) == TORN_WRITE
        assert injector.fault_for([1], 0, CHUNK_KINDS) == ERROR
        assert injector.fault_for([1], 0, DISK_KINDS) == TORN_WRITE
        assert injector.fault_for([1], 0, QUERY_KINDS) is None

    def test_chunk_apply_ignores_disk_and_query_rules(self):
        injector = FaultInjector(
            rules=(
                FaultRule(TORN_WRITE, times=None),
                FaultRule(POISON_QUERY, times=None),
            )
        )
        injector.apply([1], 0)  # must not raise: wrong site

    def test_disk_fault_matches_on_cache_key(self):
        injector = FaultInjector(
            rules=(FaultRule(ENOSPC, items=frozenset({"deadbeef"}), times=1),)
        )
        assert injector.disk_fault("deadbeef", 0) == ENOSPC
        assert injector.disk_fault("deadbeef", 1) is None  # times=1
        assert injector.disk_fault("cafe", 0) is None

    def test_raise_enospc_is_a_real_oserror(self):
        import errno

        with pytest.raises(OSError) as info:
            FaultInjector().raise_enospc("/tmp/x")
        assert info.value.errno == errno.ENOSPC


class TestPoisonQueries:
    def test_times_one_poisons_only_the_primary_attempt(self):
        injector = FaultInjector.poison_queries([7], times=1)
        with pytest.raises(InjectedFault):
            injector.apply_query(7, 0)
        injector.apply_query(7, 1)  # fallback retry recovers
        injector.apply_query(8, 0)  # other users untouched

    def test_times_none_poisons_every_attempt(self):
        injector = FaultInjector.poison_queries([7])
        for attempt in range(3):
            with pytest.raises(InjectedFault):
                injector.apply_query(7, attempt)

    def test_poison_query_never_fires_at_the_chunk_site(self):
        injector = FaultInjector.poison_queries([7])
        injector.apply([7], 0)  # chunk site: inert
        assert injector.disk_fault("7", 0) is None


class TestDiskFaults:
    def test_constructor_builds_only_requested_rules(self):
        injector = FaultInjector.disk_faults(torn=1.0, slow=1.0)
        kinds = {rule.kind for rule in injector.rules}
        assert kinds == {TORN_WRITE, SLOW_IO}
        assert injector.disk_fault("k", 0) in (TORN_WRITE, SLOW_IO)

    def test_plan_is_deterministic_in_seed(self):
        a = FaultInjector.disk_faults(torn=0.4, enospc=0.4, seed=2)
        b = FaultInjector.disk_faults(torn=0.4, enospc=0.4, seed=2)
        keys = [f"key-{i}" for i in range(64)]
        plan_a = [a.disk_fault(k, 0) for k in keys]
        assert plan_a == [b.disk_fault(k, 0) for k in keys]
        assert any(plan_a) and None in plan_a

    def test_slow_io_seconds_rides_the_injector(self):
        injector = FaultInjector.disk_faults(slow=1.0, slow_io_seconds=0.2)
        assert injector.slow_io_seconds == 0.2


class TestShmLeakRule:
    def test_shm_leak_is_a_chunk_kind(self):
        assert SHM_LEAK in CHUNK_KINDS
        rule = FaultRule(SHM_LEAK, times=1)
        assert rule.matches([1], attempt=0, seed=0)

    def test_serial_path_never_leaks(self, tmp_path):
        # in_worker=False: a leak would be charged to the supervisor.
        injector = FaultInjector(
            rules=(FaultRule(SHM_LEAK, times=None),),
            registry_dir=str(tmp_path),
        )
        injector.apply([1], 0, in_worker=False)
        from repro.resilience import SegmentRegistry

        assert SegmentRegistry(tmp_path).records() == []
