"""Determinism under failure (satellite of the fault-tolerance PR).

A sweep whose workers crash/hang/error once and are retried must return
floats identical to an uninterrupted run — across jobs counts, both
prefix-evaluation engines, and both timeline backends.  Quarantining a
poison user must equal running the sweep over the cohort without them.
"""

import functools

import pytest

from repro.core import CONREP, make_policy, select_cohort, sweep_replication_degree
from repro.datasets import synthetic_facebook
from repro.onlinetime import SporadicModel
from repro.parallel import (
    FaultInjector,
    ParallelExecutor,
    RetryPolicy,
    fork_available,
)
from repro.parallel.faults import CRASH, ERROR, HANG

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="needs the fork start method"
)

FAST = RetryPolicy(max_attempts=3, base_delay=0.0, max_delay=0.0, jitter=0.0)


@functools.lru_cache(maxsize=1)
def _dataset():
    return synthetic_facebook(420, seed=7)


@functools.lru_cache(maxsize=8)
def _baseline(engine="incremental", backend="python", drop_user=None):
    ds = _dataset()
    users = select_cohort(ds, 6, max_users=10)
    if drop_user is not None:
        users = [u for u in users if u != drop_user]
    return _sweep(None, users=users, engine=engine, backend=backend)


def _sweep(executor, *, users=None, engine="incremental", backend="python"):
    ds = _dataset()
    if users is None:
        users = select_cohort(ds, 6, max_users=10)
    return sweep_replication_degree(
        ds,
        SporadicModel(),
        [make_policy("maxav"), make_policy("random")],
        mode=CONREP,
        degrees=[0, 2, 4],
        users=list(users),
        seed=3,
        executor=executor,
    )


def _cohort():
    return select_cohort(_dataset(), 6, max_users=10)


@needs_fork
class TestFaultedSweepsMatchClean:
    @pytest.mark.parametrize("engine", ["incremental", "naive"])
    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_crash_retry_is_float_identical(self, engine, backend):
        clean = _baseline(engine=engine, backend=backend)
        victim = _cohort()[0]
        injector = FaultInjector.once(crash={victim})
        with ParallelExecutor(
            jobs=4, chunk_size=2, retry=FAST, fault_injector=injector
        ) as ex:
            faulted = _sweep(ex, engine=engine, backend=backend)
            assert ex.pool_stats.rebuilds >= 1
        assert faulted == clean

    def test_error_retry_is_float_identical(self):
        clean = _baseline()
        injector = FaultInjector.once(error={_cohort()[1]})
        with ParallelExecutor(
            jobs=4, chunk_size=2, retry=FAST, fault_injector=injector
        ) as ex:
            faulted = _sweep(ex)
            assert ex.pool_stats.retries >= 1
        assert faulted == clean

    def test_hang_recovery_is_float_identical(self):
        clean = _baseline()
        injector = FaultInjector.once(hang={_cohort()[2]}, hang_seconds=30)
        with ParallelExecutor(
            jobs=4,
            chunk_size=2,
            retry=FAST,
            chunk_timeout=2.0,
            fault_injector=injector,
        ) as ex:
            faulted = _sweep(ex)
            assert ex.pool_stats.timeouts >= 1
        assert faulted == clean

    def test_faulted_parallel_matches_clean_serial(self):
        # jobs=4 with a crash == jobs=1 with no executor at all.
        serial = _sweep(ParallelExecutor(jobs=1))
        injector = FaultInjector.once(crash={_cohort()[0]})
        with ParallelExecutor(
            jobs=4, chunk_size=3, retry=FAST, fault_injector=injector
        ) as ex:
            assert _sweep(ex) == serial


@needs_fork
class TestQuarantineEqualsExclusion:
    def test_poison_user_aggregate_matches_reduced_cohort(self):
        victim = _cohort()[3]
        reduced = _baseline(drop_user=victim)
        injector = FaultInjector.poison(ERROR, [victim])
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
        with ParallelExecutor(
            jobs=2, chunk_size=2, retry=policy, fault_injector=injector
        ) as ex:
            with pytest.warns(RuntimeWarning):
                quarantined = _sweep(ex)
            assert ex.failures.quarantined_items() == [victim]
        assert quarantined == reduced

    def test_serial_quarantine_matches_reduced_cohort(self):
        victim = _cohort()[3]
        reduced = _baseline(drop_user=victim)
        injector = FaultInjector.poison(ERROR, [victim])
        ex = ParallelExecutor(jobs=1, retry=FAST, fault_injector=injector)
        with pytest.warns(RuntimeWarning):
            assert _sweep(ex) == reduced
