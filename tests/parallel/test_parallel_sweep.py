"""Parallel sweeps must be bit-identical to serial ones.

This is the determinism contract of the whole engine: ``jobs=N`` only
changes where per-user work runs, never what is computed.  Equality is
checked on the frozen ``AggregateMetrics`` dataclasses, i.e. exact float
equality — not approximate.
"""

import functools

import pytest

from repro.core import (
    make_policy,
    placement_sequences,
    select_cohort,
    sweep_replication_degree,
)
from repro.datasets import synthetic_facebook
from repro.onlinetime import SporadicModel, compute_schedules
from repro.parallel import ParallelExecutor, fork_available

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="needs the fork start method"
)


@functools.lru_cache(maxsize=1)
def _dataset():
    return synthetic_facebook(600, seed=5)


def _sweep(executor):
    ds = _dataset()
    users = select_cohort(ds, 10, max_users=10)
    return sweep_replication_degree(
        ds,
        SporadicModel(),
        [make_policy("maxav"), make_policy("mostactive"), make_policy("random")],
        degrees=list(range(6)),
        users=users,
        seed=0,
        repeats=2,
        executor=executor,
    )


class TestSweepBitIdentity:
    def test_jobs2_equals_serial(self):
        serial = _sweep(ParallelExecutor(jobs=1))
        parallel = _sweep(ParallelExecutor(jobs=2))
        assert parallel == serial  # exact dataclass equality, all floats

    def test_jobs4_chunked_equals_serial(self):
        serial = _sweep(ParallelExecutor(jobs=1))
        parallel = _sweep(ParallelExecutor(jobs=4, chunk_size=1))
        assert parallel == serial

    def test_default_executor_is_serial(self):
        baseline = _sweep(None)
        assert baseline == _sweep(ParallelExecutor(jobs=1))


class TestPlacementSequencesParallel:
    def test_sequences_identical_and_ordered(self):
        ds = _dataset()
        users = select_cohort(ds, 10, max_users=10)
        schedules = compute_schedules(ds, SporadicModel(), seed=1)
        policy = make_policy("random")
        serial = placement_sequences(
            ds, schedules, users, policy, max_degree=5, seed=1
        )
        parallel = placement_sequences(
            ds,
            schedules,
            users,
            policy,
            max_degree=5,
            seed=1,
            executor=ParallelExecutor(jobs=2),
        )
        assert parallel == serial
        assert list(parallel) == list(users)  # keyed in cohort order


class TestSweepTimings:
    def test_phases_recorded(self):
        cohort = select_cohort(_dataset(), 10, max_users=10)
        ex = ParallelExecutor(jobs=2)
        _sweep(ex)
        timing = ex.timings["sweep[sporadic]"]
        assert timing.calls == 2  # one per repeat
        assert timing.items == 2 * len(cohort)
        assert timing.seconds > 0
