"""Executor lifecycle at interpreter shutdown, and payload pool tokens."""

import os
import subprocess
import sys

import pytest

import repro
from repro.parallel import (
    ParallelExecutor,
    SweepPayload,
    evaluate_users_chunk,
    fork_available,
    packed_token,
)
from repro.timeline import PackedSchedules, SharedPackedSchedules
from repro.timeline.intervals import IntervalSet

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

# A leaked executor with a live pool: the interpreter exits without
# close() ever being called, so __del__ fires during shutdown, when
# module globals may already be torn down.
_LEAK_SCRIPT = """
import sys
from repro.datasets import synthetic_facebook
from repro.onlinetime import SporadicModel, compute_schedules
from repro.core import make_policy
from repro.parallel import ParallelExecutor, SweepPayload, evaluate_users_chunk

ds = synthetic_facebook(120, seed=1)
schedules = compute_schedules(ds, SporadicModel(), seed=0)
payload = SweepPayload(
    dataset=ds,
    schedules=schedules,
    policies=(make_policy("random"),),
    mode="conrep",
    degrees=(0, 1, 2),
    max_degree=2,
    seed=0,
)
executor = ParallelExecutor(jobs=2)
users = sorted(ds.graph.users())[:4]
cells = executor.map_shared(evaluate_users_chunk, payload, users)
assert len(cells) == len(users)
print("done", flush=True)
# No executor.close(): the pool is deliberately leaked.
"""


class TestLeakedExecutorShutdown:
    @pytest.mark.skipif(not fork_available(), reason="needs fork pools")
    def test_no_stderr_noise_when_leaked(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", _LEAK_SCRIPT],
            env=env,
            capture_output=True,
            text=True,
            timeout=180,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "done"
        assert proc.stderr.strip() == ""

    def test_close_tolerates_torn_down_pool(self):
        executor = ParallelExecutor(jobs=1)

        class _Torn:
            def shutdown(self, wait=True):
                raise TypeError("'NoneType' object is not callable")

        executor._pool = _Torn()
        executor.close()  # must not raise
        assert executor._pool is None
        executor.close()  # idempotent


class TestPackedToken:
    def test_heap_packed_by_identity(self):
        packed = PackedSchedules.from_schedules(
            {0: IntervalSet([(0.0, 10.0)])}
        )
        assert packed_token(None) is None
        assert packed_token(packed) == ("packed", id(packed))

    def test_shared_packed_by_block_name(self):
        shared = SharedPackedSchedules.from_schedules(
            {0: IntervalSet([(0.0, 10.0)])}
        )
        try:
            token = packed_token(shared)
            assert token == ("shm", shared.shared_name)
            # The token must survive pickling (worker respawn), unlike id().
            import pickle

            clone = pickle.loads(pickle.dumps(shared))
            try:
                assert packed_token(clone) == token
            finally:
                clone.close()
        finally:
            shared.close()

    def test_fingerprint_uses_token(self):
        from repro.core import make_policy
        from repro.datasets import synthetic_facebook
        from repro.onlinetime import SporadicModel, compute_schedules

        ds = synthetic_facebook(60, seed=1)
        schedules = compute_schedules(ds, SporadicModel(), seed=0)
        shared = SharedPackedSchedules.from_schedules(schedules)
        try:
            payload = SweepPayload(
                dataset=ds,
                schedules=schedules,
                policies=(make_policy("random"),),
                mode="conrep",
                degrees=(0, 1),
                max_degree=1,
                seed=0,
                packed=shared,
            )
            assert ("shm", shared.shared_name) in payload.fingerprint()
        finally:
            shared.close()
