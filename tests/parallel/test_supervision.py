"""Tests for the supervised execution path: crash/hang/error recovery,
retry/backoff, bisection, quarantine, and strict fail-fast."""

import pytest

from repro.parallel import (
    ParallelExecutor,
    FaultInjector,
    InjectedFault,
    QUARANTINED,
    RetryPolicy,
    fork_available,
    is_quarantined,
)
from repro.parallel.faults import CRASH, ERROR, HANG
from repro.parallel.supervise import (
    ChunkFailureError,
    FailureReport,
    KIND_ERROR,
    KIND_TIMEOUT,
    KIND_WORKER_LOST,
)


def _square_chunk(payload, chunk):
    """Top-level worker (process pools resolve it by module path)."""
    return [payload * item * item for item in chunk]


#: Fast schedule for tests: no real sleeping between retries.
FAST = RetryPolicy(max_attempts=3, base_delay=0.0, max_delay=0.0, jitter=0.0)

ITEMS = list(range(12))
EXPECT = [2 * i * i for i in ITEMS]

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="needs the fork start method"
)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)

    def test_delay_grows_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.35, jitter=0.0)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.35)  # capped
        assert policy.delay(9) == pytest.approx(0.35)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=1.0, jitter=0.5)
        a = policy.delay(1, token=3)
        assert a == policy.delay(1, token=3)
        assert 0.1 <= a <= 0.15
        assert policy.delay(1, token=4) != a


class TestFailureReport:
    def test_snapshot_and_since(self):
        report = FailureReport()
        assert not report
        mark = report.snapshot()
        from repro.parallel.supervise import ChunkFailure, QuarantinedItem

        report.chunk_failures.append(
            ChunkFailure("p", 0, 2, 0, KIND_ERROR, "boom")
        )
        report.quarantined.append(QuarantinedItem("p", 7, KIND_ERROR, "boom"))
        delta = report.since(mark)
        assert len(delta.chunk_failures) == 1
        assert delta.quarantined_items() == [7]
        assert bool(report)
        blob = report.as_dict()
        assert blob["quarantined"][0]["item"] == 7


@needs_fork
class TestCrashRecovery:
    def test_crash_once_recovers_identically(self):
        # Every chunk's first attempt kills its worker: the whole first
        # round dies, the pool is rebuilt, the retries succeed.
        injector = FaultInjector.once(any_chunk=CRASH)
        with ParallelExecutor(
            jobs=3, retry=FAST, fault_injector=injector
        ) as ex:
            assert ex.map_shared(_square_chunk, 2, ITEMS) == EXPECT
            assert ex.pool_stats.rebuilds >= 1
            assert ex.pool_stats.retries >= 1
            assert ex.pool_stats.quarantined == 0
        kinds = {f.kind for f in ex.failures.chunk_failures}
        assert KIND_WORKER_LOST in kinds

    def test_crash_on_one_item_recovers(self):
        injector = FaultInjector.once(crash={5})
        with ParallelExecutor(
            jobs=2, chunk_size=3, retry=FAST, fault_injector=injector
        ) as ex:
            assert ex.map_shared(_square_chunk, 2, ITEMS) == EXPECT
            assert ex.pool_stats.rebuilds >= 1

    def test_crash_poison_is_quarantined(self):
        injector = FaultInjector.poison(CRASH, [5])
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
        with ParallelExecutor(
            jobs=2, chunk_size=3, retry=policy, fault_injector=injector
        ) as ex:
            with pytest.warns(RuntimeWarning, match="quarantined item 5"):
                out = ex.map_shared(_square_chunk, 2, ITEMS)
        assert out[5] is QUARANTINED
        assert [r for r in out if not is_quarantined(r)] == [
            v for i, v in enumerate(EXPECT) if i != 5
        ]
        assert ex.pool_stats.quarantined == 1
        assert ex.failures.quarantined_items() == [5]
        assert ex.failures.quarantined[0].kind == KIND_WORKER_LOST


@needs_fork
class TestErrorRecovery:
    def test_error_once_retries_without_rebuild(self):
        injector = FaultInjector.once(error={4})
        with ParallelExecutor(
            jobs=2, chunk_size=4, retry=FAST, fault_injector=injector
        ) as ex:
            assert ex.map_shared(_square_chunk, 2, ITEMS) == EXPECT
            # An ordinary exception never kills the pool.
            assert ex.pool_stats.rebuilds == 0
            assert ex.pool_stats.starts == 1
        failure = ex.failures.chunk_failures[0]
        assert failure.kind == KIND_ERROR
        assert "InjectedFault" in failure.error
        assert "InjectedFault" in failure.traceback

    def test_error_poison_bisected_down_to_item(self):
        injector = FaultInjector.poison(ERROR, [7])
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
        with ParallelExecutor(
            jobs=2, chunk_size=6, retry=policy, fault_injector=injector
        ) as ex:
            with pytest.warns(RuntimeWarning):
                out = ex.map_shared(_square_chunk, 2, ITEMS)
        assert out[7] is QUARANTINED
        assert all(
            out[i] == EXPECT[i] for i in range(len(ITEMS)) if i != 7
        )
        # Bisection narrowed a 6-item chunk to the single poison item.
        assert ex.failures.quarantined_items() == [7]
        sizes = {f.size for f in ex.failures.chunk_failures}
        assert 1 in sizes and max(sizes) > 1


@needs_fork
class TestHangRecovery:
    def test_hang_once_recovers_via_deadline(self):
        injector = FaultInjector.once(hang={3}, hang_seconds=30)
        with ParallelExecutor(
            jobs=2,
            chunk_size=3,
            retry=FAST,
            chunk_timeout=0.4,
            fault_injector=injector,
        ) as ex:
            assert ex.map_shared(_square_chunk, 2, ITEMS) == EXPECT
            assert ex.pool_stats.timeouts >= 1
            assert ex.pool_stats.rebuilds >= 1
        kinds = {f.kind for f in ex.failures.chunk_failures}
        assert KIND_TIMEOUT in kinds

    def test_hang_poison_quarantined(self):
        injector = FaultInjector.poison(HANG, [3], hang_seconds=30)
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
        with ParallelExecutor(
            jobs=2,
            chunk_size=2,
            retry=policy,
            chunk_timeout=0.3,
            fault_injector=injector,
        ) as ex:
            with pytest.warns(RuntimeWarning):
                out = ex.map_shared(_square_chunk, 2, list(range(6)))
        assert out[3] is QUARANTINED
        assert ex.failures.quarantined[0].kind == KIND_TIMEOUT


@needs_fork
class TestStrictMode:
    def test_strict_reraises_worker_exception(self):
        injector = FaultInjector.once(error={4})
        with ParallelExecutor(
            jobs=2, strict=True, retry=FAST, fault_injector=injector
        ) as ex:
            with pytest.raises(InjectedFault):
                ex.map_shared(_square_chunk, 2, ITEMS)
        assert len(ex.failures.chunk_failures) == 1

    def test_strict_raises_on_worker_loss(self):
        injector = FaultInjector.once(crash={4})
        with ParallelExecutor(
            jobs=2, strict=True, retry=FAST, fault_injector=injector
        ) as ex:
            with pytest.raises(ChunkFailureError) as info:
                ex.map_shared(_square_chunk, 2, ITEMS)
        assert info.value.failure.kind == KIND_WORKER_LOST


class TestSerialSupervision:
    def test_error_once_recovers_inline(self):
        injector = FaultInjector.once(error={4})
        ex = ParallelExecutor(jobs=1, retry=FAST, fault_injector=injector)
        assert ex.map_shared(_square_chunk, 2, ITEMS) == EXPECT
        assert ex.failures.chunk_failures
        assert not ex.failures.quarantined

    def test_error_poison_quarantined_inline(self):
        injector = FaultInjector.poison(ERROR, [4])
        ex = ParallelExecutor(jobs=1, retry=FAST, fault_injector=injector)
        with pytest.warns(RuntimeWarning, match="quarantined item 4"):
            out = ex.map_shared(_square_chunk, 2, ITEMS)
        assert out[4] is QUARANTINED
        assert all(
            out[i] == EXPECT[i] for i in range(len(ITEMS)) if i != 4
        )
        assert ex.pool_stats.quarantined == 1

    def test_crash_and_hang_rules_inert_inline(self):
        # jobs=1 has no process boundary: crash/hang rules must not fire.
        injector = FaultInjector.once(crash={1}, hang={2}, hang_seconds=60)
        ex = ParallelExecutor(jobs=1, retry=FAST, fault_injector=injector)
        assert ex.map_shared(_square_chunk, 2, ITEMS) == EXPECT
        assert not ex.failures

    def test_strict_propagates_inline(self):
        injector = FaultInjector.once(error={4})
        ex = ParallelExecutor(
            jobs=1, strict=True, retry=FAST, fault_injector=injector
        )
        with pytest.raises(InjectedFault):
            ex.map_shared(_square_chunk, 2, ITEMS)


class TestValidation:
    def test_chunk_timeout_validated(self):
        with pytest.raises(ValueError):
            ParallelExecutor(jobs=1, chunk_timeout=0)
        with pytest.raises(ValueError):
            ParallelExecutor(jobs=1, chunk_timeout=-1.0)
        ParallelExecutor(jobs=1, chunk_timeout=5.0)  # legal
