"""Tests for the shared-payload process-pool executor."""

import pytest

from repro.parallel import (
    ParallelExecutor,
    fork_available,
    payload_fingerprint,
    resolve_jobs,
)


def _square_chunk(payload, chunk):
    """Top-level worker (process pools resolve it by module path)."""
    return [payload * item * item for item in chunk]


def _bad_chunk(payload, chunk):
    return chunk[:-1]  # drops one result


class TestResolveJobs:
    def test_defaults(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(7) == 7
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)
        with pytest.raises(ValueError):
            ParallelExecutor(jobs=-2)

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            ParallelExecutor(jobs=1, chunk_size=0)


class TestSerialPath:
    def test_identity_and_order(self):
        ex = ParallelExecutor(jobs=1)
        assert ex.is_serial
        assert ex.map_shared(_square_chunk, 3, [1, 2, 3]) == [3, 12, 27]

    def test_empty_items(self):
        assert ParallelExecutor(jobs=1).map_shared(_square_chunk, 1, []) == []

    def test_result_count_mismatch_detected(self):
        with pytest.raises(RuntimeError):
            ParallelExecutor(jobs=1).map_shared(_bad_chunk, None, [1, 2])

    def test_timings_accumulate(self):
        ex = ParallelExecutor(jobs=1)
        ex.map_shared(_square_chunk, 1, [1, 2], phase="p")
        ex.map_shared(_square_chunk, 1, [3], phase="p")
        timing = ex.timings["p"]
        assert timing.items == 3
        assert timing.calls == 2
        assert timing.seconds >= 0
        as_dict = ex.timings_dict()["p"]
        assert set(as_dict) == {"seconds", "items", "calls", "items_per_second"}


@pytest.mark.skipif(not fork_available(), reason="needs the fork start method")
class TestParallelPath:
    def test_matches_serial_in_order(self):
        items = list(range(23))
        serial = ParallelExecutor(jobs=1).map_shared(_square_chunk, 2, items)
        parallel = ParallelExecutor(jobs=3).map_shared(_square_chunk, 2, items)
        assert parallel == serial

    def test_explicit_chunk_size(self):
        ex = ParallelExecutor(jobs=2, chunk_size=1)
        assert ex.map_shared(_square_chunk, 1, [4, 5]) == [16, 25]

    def test_more_jobs_than_items(self):
        ex = ParallelExecutor(jobs=8)
        assert ex.map_shared(_square_chunk, 1, [2]) == [4]

    def test_jobs_zero_uses_all_cpus(self):
        ex = ParallelExecutor(jobs=0)
        assert ex.effective_jobs >= 1
        assert ex.map_shared(_square_chunk, 1, [1, 2, 3]) == [1, 4, 9]


class _TokenPayload:
    """A payload with an explicit reuse fingerprint."""

    def __init__(self, token):
        self.token = token

    def fingerprint(self):
        return ("token", self.token)

    def __mul__(self, other):  # lets _square_chunk use it as the factor
        return self.token * other


class TestPayloadFingerprint:
    def test_fingerprint_method_used(self):
        assert payload_fingerprint(_TokenPayload(3)) == (
            "fingerprint",
            ("token", 3),
        )
        # Equal tokens on distinct objects fingerprint identically.
        assert payload_fingerprint(_TokenPayload(3)) == payload_fingerprint(
            _TokenPayload(3)
        )

    def test_fallback_is_object_identity(self):
        payload = object()
        assert payload_fingerprint(payload) == ("object", id(payload))


@pytest.mark.skipif(not fork_available(), reason="needs the fork start method")
class TestPersistentPool:
    def test_pool_reused_while_fingerprint_unchanged(self):
        with ParallelExecutor(jobs=2) as ex:
            ex.map_shared(_square_chunk, _TokenPayload(2), [1, 2, 3])
            assert ex.pool_alive
            ex.map_shared(_square_chunk, _TokenPayload(2), [4, 5])
            ex.map_shared(_square_chunk, _TokenPayload(2), [6])
            assert ex.pool_stats.starts == 1
            assert ex.pool_stats.reuses == 2

    def test_pool_restarted_on_payload_change(self):
        with ParallelExecutor(jobs=2) as ex:
            assert ex.map_shared(_square_chunk, _TokenPayload(1), [2]) == [4]
            assert ex.map_shared(_square_chunk, _TokenPayload(3), [2]) == [12]
            assert ex.pool_stats.starts == 2
            assert ex.pool_stats.reuses == 0

    def test_pool_restarted_on_worker_change(self):
        with ParallelExecutor(jobs=2) as ex:
            ex.map_shared(_square_chunk, _TokenPayload(1), [1])
            with pytest.raises(RuntimeError):
                ex.map_shared(_bad_chunk, _TokenPayload(1), [1, 2])
            assert ex.pool_stats.starts == 2

    def test_context_manager_closes_pool(self):
        with ParallelExecutor(jobs=2) as ex:
            ex.map_shared(_square_chunk, _TokenPayload(1), [1])
            assert ex.pool_alive
        assert not ex.pool_alive

    def test_close_is_idempotent_and_allows_restart(self):
        ex = ParallelExecutor(jobs=2)
        ex.map_shared(_square_chunk, _TokenPayload(1), [3])
        ex.close()
        ex.close()
        assert not ex.pool_alive
        assert ex.map_shared(_square_chunk, _TokenPayload(1), [3]) == [9]
        assert ex.pool_stats.starts == 2
        ex.close()

    def test_serial_path_never_starts_a_pool(self):
        ex = ParallelExecutor(jobs=1)
        ex.map_shared(_square_chunk, _TokenPayload(2), [1, 2])
        assert not ex.pool_alive
        assert ex.pool_stats.starts == 0


class TestTimingDeltas:
    def test_timings_since_reports_only_new_activity(self):
        ex = ParallelExecutor(jobs=1)
        ex.map_shared(_square_chunk, 1, [1, 2], phase="a")
        mark = ex.snapshot_timings()
        ex.map_shared(_square_chunk, 1, [3, 4, 5], phase="a")
        ex.map_shared(_square_chunk, 1, [6], phase="b")
        deltas = ex.timings_since(mark)
        assert deltas["a"]["items"] == 3
        assert deltas["a"]["calls"] == 1
        assert deltas["b"]["items"] == 1
        mark2 = ex.snapshot_timings()
        assert ex.timings_since(mark2) == {}

    def test_pool_stats_since(self):
        ex = ParallelExecutor(jobs=1)
        mark = ex.pool_stats.snapshot()
        ex.pool_stats.starts += 2
        ex.pool_stats.reuses += 5
        ex.pool_stats.retries += 1
        assert ex.pool_stats.since(mark) == {
            "starts": 2,
            "reuses": 5,
            "rebuilds": 0,
            "retries": 1,
            "timeouts": 0,
            "quarantined": 0,
        }
