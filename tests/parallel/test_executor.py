"""Tests for the shared-payload process-pool executor."""

import pytest

from repro.parallel import ParallelExecutor, fork_available, resolve_jobs


def _square_chunk(payload, chunk):
    """Top-level worker (process pools resolve it by module path)."""
    return [payload * item * item for item in chunk]


def _bad_chunk(payload, chunk):
    return chunk[:-1]  # drops one result


class TestResolveJobs:
    def test_defaults(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(7) == 7
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)
        with pytest.raises(ValueError):
            ParallelExecutor(jobs=-2)

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            ParallelExecutor(jobs=1, chunk_size=0)


class TestSerialPath:
    def test_identity_and_order(self):
        ex = ParallelExecutor(jobs=1)
        assert ex.is_serial
        assert ex.map_shared(_square_chunk, 3, [1, 2, 3]) == [3, 12, 27]

    def test_empty_items(self):
        assert ParallelExecutor(jobs=1).map_shared(_square_chunk, 1, []) == []

    def test_result_count_mismatch_detected(self):
        with pytest.raises(RuntimeError):
            ParallelExecutor(jobs=1).map_shared(_bad_chunk, None, [1, 2])

    def test_timings_accumulate(self):
        ex = ParallelExecutor(jobs=1)
        ex.map_shared(_square_chunk, 1, [1, 2], phase="p")
        ex.map_shared(_square_chunk, 1, [3], phase="p")
        timing = ex.timings["p"]
        assert timing.items == 3
        assert timing.calls == 2
        assert timing.seconds >= 0
        as_dict = ex.timings_dict()["p"]
        assert set(as_dict) == {"seconds", "items", "calls", "items_per_second"}


@pytest.mark.skipif(not fork_available(), reason="needs the fork start method")
class TestParallelPath:
    def test_matches_serial_in_order(self):
        items = list(range(23))
        serial = ParallelExecutor(jobs=1).map_shared(_square_chunk, 2, items)
        parallel = ParallelExecutor(jobs=3).map_shared(_square_chunk, 2, items)
        assert parallel == serial

    def test_explicit_chunk_size(self):
        ex = ParallelExecutor(jobs=2, chunk_size=1)
        assert ex.map_shared(_square_chunk, 1, [4, 5]) == [16, 25]

    def test_more_jobs_than_items(self):
        ex = ParallelExecutor(jobs=8)
        assert ex.map_shared(_square_chunk, 1, [2]) == [4]

    def test_jobs_zero_uses_all_cpus(self):
        ex = ParallelExecutor(jobs=0)
        assert ex.effective_jobs >= 1
        assert ex.map_shared(_square_chunk, 1, [1, 2, 3]) == [1, 4, 9]
