"""ShardedDataset: shard-vs-eager equivalence and content addressing."""

import json
import os
import subprocess
import sys

import pytest

import repro
from repro.cache.keys import dataset_fingerprint
from repro.datasets import ShardedDataset, SyntheticSpec

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _assert_shards_match_eager(spec, num_shards):
    eager = spec.eager()
    sharded = ShardedDataset(spec, num_shards)
    assert tuple(sorted(eager.graph.users())) == sharded.survivors
    seen = []
    for k in range(num_shards):
        shard = sharded.shard(k)
        cohort = sharded.shard_users(k)
        seen.extend(cohort)
        for user in cohort:
            assert shard.graph.replica_candidates(
                user
            ) == eager.graph.replica_candidates(user)
            assert list(shard.trace.created_by(user)) == list(
                eager.trace.created_by(user)
            )
            assert list(shard.trace.received_by(user)) == list(
                eager.trace.received_by(user)
            )
        assert set(shard.trace.activities) <= set(eager.trace.activities)
    # Shards partition the surviving cohort, in order, without overlap.
    assert tuple(seen) == sharded.survivors


class TestShardEquivalence:
    def test_facebook_shards_match_eager_slices(self):
        _assert_shards_match_eager(
            SyntheticSpec(kind="facebook", num_users=300, seed=7), 4
        )

    def test_twitter_shards_match_eager_slices(self):
        # Twitter also exercises the candidate filter in the fixpoint.
        _assert_shards_match_eager(
            SyntheticSpec(kind="twitter", num_users=300, seed=11), 3
        )

    def test_unfiltered_fast_path(self):
        _assert_shards_match_eager(
            SyntheticSpec(
                kind="facebook", num_users=120, seed=5, min_activities=0
            ),
            2,
        )

    def test_single_shard_covers_everything(self):
        spec = SyntheticSpec(kind="facebook", num_users=200, seed=3)
        sharded = ShardedDataset(spec, 1)
        assert sharded.shard_users(0) == sharded.survivors

    def test_more_shards_than_survivors(self):
        spec = SyntheticSpec(kind="facebook", num_users=60, seed=1)
        sharded = ShardedDataset(spec, 500)
        seen = []
        for shard in range(500):
            seen.extend(sharded.shard_users(shard))
        assert tuple(seen) == sharded.survivors

    def test_shard_index_validated(self):
        sharded = ShardedDataset(
            SyntheticSpec(kind="facebook", num_users=60, seed=1), 2
        )
        with pytest.raises(IndexError):
            sharded.shard_users(2)
        with pytest.raises(IndexError):
            sharded.shard_users(-1)

    def test_num_shards_validated(self):
        with pytest.raises(ValueError):
            ShardedDataset(
                SyntheticSpec(kind="facebook", num_users=60, seed=1), 0
            )


class TestSpecValidation:
    def test_kind_checked(self):
        with pytest.raises(ValueError):
            SyntheticSpec(kind="myspace", num_users=100)

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            SyntheticSpec(kind="facebook", num_users=1)
        with pytest.raises(ValueError):
            SyntheticSpec(kind="facebook", num_users=100, min_activities=-1)


class TestContentAddressing:
    def test_shard_fingerprint_prestamped(self):
        # The sweep cache must address a shard without hashing its
        # edges/activities: the fingerprint is stamped at build time and
        # distinct per (spec, shard, num_shards).
        sharded = ShardedDataset(
            SyntheticSpec(kind="facebook", num_users=120, seed=2), 2
        )
        a, b = sharded.shard(0), sharded.shard(1)
        assert dataset_fingerprint(a) == sharded.shard_fingerprint(0)
        assert dataset_fingerprint(a) != dataset_fingerprint(b)

    def test_spec_fingerprint_covers_knobs(self):
        base = SyntheticSpec(kind="facebook", num_users=120, seed=2)
        assert base.fingerprint() == SyntheticSpec(
            kind="facebook", num_users=120, seed=2
        ).fingerprint()
        for other in (
            SyntheticSpec(kind="facebook", num_users=120, seed=3),
            SyntheticSpec(kind="facebook", num_users=121, seed=2),
            SyntheticSpec(kind="twitter", num_users=120, seed=2),
            SyntheticSpec(
                kind="facebook", num_users=120, seed=2, max_degree=9
            ),
        ):
            assert other.fingerprint() != base.fingerprint()


_SUBPROCESS_SCRIPT = """
import json, random, sys
from repro.datasets import ShardedDataset, SyntheticSpec

kind = sys.argv[1]
spec = SyntheticSpec(kind=kind, num_users=200, seed=13)
eager = spec.eager()
sharded = ShardedDataset(spec, 3)
assert tuple(sorted(eager.graph.users())) == sharded.survivors
shard = random.Random(99).randrange(3)
ds = sharded.shard(shard)
cohort = sharded.shard_users(shard)
for u in cohort:
    assert ds.graph.replica_candidates(u) == eager.graph.replica_candidates(u)
    assert list(ds.trace.created_by(u)) == list(eager.trace.created_by(u))
    assert list(ds.trace.received_by(u)) == list(eager.trace.received_by(u))
print(json.dumps({
    "shard": shard,
    "cohort": list(cohort),
    "activities": [
        (a.timestamp, a.creator, a.receiver) for a in ds.trace.activities
    ],
}))
"""


def _run_under_hashseed(hashseed, kind):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SCRIPT, kind],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(proc.stdout)


class TestHashSeedIndependence:
    @pytest.mark.parametrize("kind", ["facebook", "twitter"])
    def test_shard_equals_eager_slice_across_hash_seeds(self, kind):
        # The property (shard == eager slice) is asserted *inside* each
        # subprocess under a random string-hash salt, and the shard's
        # materialised activities must be identical across salts.
        a = _run_under_hashseed("random", kind)
        b = _run_under_hashseed("random", kind)
        c = _run_under_hashseed("0", kind)
        assert a == b == c
