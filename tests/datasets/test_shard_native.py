"""Shard-native pipeline equivalence: stream layout end to end.

Three layers must agree with the whole-graph reference path before the
dataset-per-shard mode can replace it at scale:

1. stream-layout shard datasets == eager stream-layout slices (graph
   rows, candidates, activities);
2. the streaming receiver-survey fixpoint == ``filter_dataset``'s
   fixpoint (via the eager builders, which run the latter);
3. the ``*_datasets`` sweep drivers == the whole-dataset sweeps,
   field for field, across the (jobs, engine, backend, shards) grid —
   integer fields exactly, float fields to ~1e-9 (the only divergence
   is float-summation order in the cross-shard merge).

The subprocess suite re-asserts layer 1+3 under ``PYTHONHASHSEED=random``
so no set/dict iteration order can leak into shard content or metrics.
"""

import dataclasses
import functools
import json
import os
import subprocess
import sys

import pytest

import repro
from repro.core import (
    AggregateMetrics,
    make_policy,
    select_cohort,
    sweep_replication_degree,
    sweep_replication_degree_datasets,
    sweep_session_length,
    sweep_session_length_datasets,
    sweep_user_degree,
    sweep_user_degree_datasets,
)
from repro.datasets import ShardedDataset, SyntheticSpec
from repro.onlinetime import SporadicModel
from repro.parallel import ParallelExecutor, fork_available

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _stream_spec(kind, num_users=300, seed=7):
    return SyntheticSpec(
        kind=kind, num_users=num_users, seed=seed, graph_layout="stream"
    )


def _assert_shards_match_eager(spec, num_shards):
    eager = spec.eager()
    sharded = ShardedDataset(spec, num_shards)
    assert tuple(sorted(eager.graph.users())) == sharded.survivors
    seen = []
    for k in range(num_shards):
        shard = sharded.shard(k)
        cohort = sharded.shard_users(k)
        seen.extend(cohort)
        for user in cohort:
            assert shard.graph.replica_candidates(
                user
            ) == eager.graph.replica_candidates(user)
            assert list(shard.trace.created_by(user)) == list(
                eager.trace.created_by(user)
            )
            assert list(shard.trace.received_by(user)) == list(
                eager.trace.received_by(user)
            )
    assert tuple(seen) == sharded.survivors


class TestStreamShardEquivalence:
    def test_facebook_stream_shards_match_eager(self):
        _assert_shards_match_eager(_stream_spec("facebook"), 4)

    def test_twitter_stream_shards_match_eager(self):
        # Twitter exercises the candidate filter inside the fixpoint.
        _assert_shards_match_eager(_stream_spec("twitter", seed=11), 3)

    def test_stream_plane_never_exposes_a_whole_graph(self):
        sharded = ShardedDataset(_stream_spec("facebook", 120, seed=2), 2)
        with pytest.raises(AttributeError):
            sharded.graph

    def test_streaming_fixpoint_matches_filter_dataset(self):
        # spec.eager() runs filter_dataset to fixpoint on the whole
        # graph; the survivor survey must land on the same set without
        # ever building that graph.
        for kind in ("facebook", "twitter"):
            spec = _stream_spec(kind, 250, seed=9)
            sharded = ShardedDataset(spec, 2)
            assert sharded.survivors == tuple(
                sorted(spec.eager().graph.users())
            )

    def test_users_with_degree_matches_filtered_graph(self):
        spec = _stream_spec("facebook", 250, seed=9)
        sharded = ShardedDataset(spec, 2)
        graph = spec.eager().graph
        for degree in (1, 2, 5, 10):
            assert sharded.users_with_degree(degree) == list(
                graph.users_with_degree(degree)
            )

    def test_stream_fingerprints_do_not_alias_legacy(self):
        legacy = SyntheticSpec(kind="facebook", num_users=120, seed=2)
        stream = _stream_spec("facebook", 120, seed=2)
        assert legacy.fingerprint() != stream.fingerprint()


def _assert_series_match(got, want):
    """Dataset-mode sweep == whole-path sweep: ints exact, floats ~1e-9."""
    assert set(got) == set(want)
    for name in want:
        assert len(got[name]) == len(want[name]), name
        for g, w in zip(got[name], want[name]):
            if w is None:
                assert g is None
                continue
            for field in dataclasses.fields(AggregateMetrics):
                gv = getattr(g, field.name)
                wv = getattr(w, field.name)
                if isinstance(wv, int):
                    assert gv == wv, f"{name}.{field.name}"
                else:
                    assert gv == pytest.approx(
                        wv, rel=1e-9, abs=1e-12
                    ), f"{name}.{field.name}"


@functools.lru_cache(maxsize=2)
def _sweep_fixture(kind):
    spec = _stream_spec(kind)
    return spec.eager(), ShardedDataset(spec, 3)


def _policies():
    return [make_policy("maxav"), make_policy("random")]


class TestDatasetModeSweepIdentity:
    @pytest.mark.parametrize("kind", ["facebook", "twitter"])
    @pytest.mark.parametrize(
        "engine,backend", [("incremental", "python"), ("naive", "numpy")]
    )
    @pytest.mark.parametrize("shards", [1, 3])
    def test_replication_degree(self, kind, engine, backend, shards):
        eager, sharded = _sweep_fixture(kind)
        users = select_cohort(eager, 10, max_users=8, seed=0)
        assert users == select_cohort(sharded, 10, max_users=8, seed=0)
        kwargs = dict(
            degrees=list(range(4)),
            users=users,
            seed=0,
            repeats=2,
            engine=engine,
            backend=backend,
        )
        whole = sweep_replication_degree(
            eager, SporadicModel(), _policies(), shards=shards, **kwargs
        )
        per_shard = sweep_replication_degree_datasets(
            sharded, SporadicModel(), _policies(), shards=shards, **kwargs
        )
        _assert_series_match(per_shard, whole)

    @pytest.mark.skipif(not fork_available(), reason="needs fork pools")
    def test_replication_degree_across_jobs(self):
        eager, sharded = _sweep_fixture("facebook")
        users = select_cohort(eager, 10, max_users=8, seed=0)
        kwargs = dict(degrees=[0, 2], users=users, seed=0, repeats=1)
        whole = sweep_replication_degree(
            eager, SporadicModel(), _policies(), **kwargs
        )
        with ParallelExecutor(jobs=2) as executor:
            per_shard = sweep_replication_degree_datasets(
                sharded,
                SporadicModel(),
                _policies(),
                executor=executor,
                **kwargs,
            )
        _assert_series_match(per_shard, whole)

    def test_session_length(self):
        eager, sharded = _sweep_fixture("facebook")
        users = select_cohort(eager, 10, max_users=6, seed=0)
        kwargs = dict(k=2, users=users, seed=0, repeats=2)
        whole = sweep_session_length(
            eager, (1000.0, 10000.0), _policies(), **kwargs
        )
        per_shard = sweep_session_length_datasets(
            sharded, (1000.0, 10000.0), _policies(), **kwargs
        )
        _assert_series_match(per_shard, whole)

    def test_user_degree(self):
        eager, sharded = _sweep_fixture("facebook")
        kwargs = dict(
            user_degrees=[2, 3, 10_000],
            max_users_per_degree=6,
            seed=0,
            repeats=2,
        )
        whole = sweep_user_degree(
            eager, SporadicModel(), _policies(), **kwargs
        )
        per_shard = sweep_user_degree_datasets(
            sharded, SporadicModel(), _policies(), **kwargs
        )
        # Degree 10_000 has no users: both paths must emit None there.
        assert any(v is None for v in whole["maxav"])
        _assert_series_match(per_shard, whole)

    def test_empty_cohort_rejected(self):
        _, sharded = _sweep_fixture("facebook")
        with pytest.raises(ValueError):
            sweep_replication_degree_datasets(
                sharded,
                SporadicModel(),
                _policies(),
                degrees=[0],
                users=[],
                seed=0,
            )


_SUBPROCESS_SCRIPT = """
import dataclasses, json, sys
from repro.core import (
    make_policy,
    select_cohort,
    sweep_replication_degree_datasets,
)
from repro.datasets import ShardedDataset, SyntheticSpec
from repro.onlinetime import SporadicModel

kind = sys.argv[1]
spec = SyntheticSpec(
    kind=kind, num_users=200, seed=13, graph_layout="stream"
)
eager = spec.eager()
sharded = ShardedDataset(spec, 2)
assert tuple(sorted(eager.graph.users())) == sharded.survivors
for k in range(2):
    ds = sharded.shard(k)
    for u in sharded.shard_users(k):
        assert ds.graph.replica_candidates(u) == eager.graph.replica_candidates(u)
        assert list(ds.trace.created_by(u)) == list(eager.trace.created_by(u))

users = select_cohort(sharded, 10, max_users=5, seed=0)
series = sweep_replication_degree_datasets(
    sharded,
    SporadicModel(),
    [make_policy("maxav"), make_policy("random")],
    degrees=[0, 2],
    users=users,
    seed=0,
    repeats=1,
)
print(json.dumps({
    "survivors": list(sharded.survivors),
    "cohort": list(users),
    "series": {
        name: [dataclasses.asdict(m) for m in points]
        for name, points in sorted(series.items())
    },
}))
"""


def _run_under_hashseed(hashseed, kind):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SCRIPT, kind],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(proc.stdout)


class TestHashSeedIndependence:
    @pytest.mark.parametrize("kind", ["facebook", "twitter"])
    def test_shard_native_pipeline_across_hash_seeds(self, kind):
        # Shard==eager is asserted *inside* each subprocess under a
        # random string-hash salt; the survivors, the cohort, and every
        # dataset-mode metric must then be bit-identical across salts.
        a = _run_under_hashseed("random", kind)
        b = _run_under_hashseed("random", kind)
        c = _run_under_hashseed("0", kind)
        assert a == b == c
