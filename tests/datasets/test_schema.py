"""Unit tests for Activity / ActivityTrace / Dataset."""

import pytest

from repro.datasets import Activity, ActivityTrace, Dataset
from repro.graph import FollowerGraph, SocialGraph
from repro.timeline import DAY_SECONDS


def _act(t, creator, receiver):
    return Activity(timestamp=t, creator=creator, receiver=receiver)


class TestActivity:
    def test_second_of_day(self):
        assert _act(DAY_SECONDS + 42, 1, 2).second_of_day == 42

    def test_ordering_by_timestamp(self):
        acts = [_act(50, 1, 2), _act(10, 3, 4)]
        assert sorted(acts)[0].timestamp == 10

    def test_frozen(self):
        act = _act(1, 2, 3)
        with pytest.raises(AttributeError):
            act.timestamp = 5


class TestActivityTrace:
    def test_empty(self):
        trace = ActivityTrace([])
        assert len(trace) == 0
        assert not trace
        assert trace.begin == 0.0
        assert trace.end == 0.0
        assert trace.span_seconds == 0.0
        assert trace.created_by(1) == []
        assert trace.activity_count(1) == 0

    def test_sorted_on_construction(self):
        trace = ActivityTrace([_act(50, 1, 2), _act(10, 2, 1)])
        assert [a.timestamp for a in trace] == [10, 50]
        assert trace.begin == 10
        assert trace.end == 50
        assert trace.span_seconds == 40

    def test_created_and_received_indexes(self):
        trace = ActivityTrace([_act(1, 1, 2), _act(2, 1, 3), _act(3, 2, 1)])
        assert [a.timestamp for a in trace.created_by(1)] == [1, 2]
        assert [a.timestamp for a in trace.received_by(1)] == [3]
        assert trace.activity_count(1) == 2
        assert trace.activity_count(3) == 0

    def test_interaction_counts(self):
        trace = ActivityTrace(
            [_act(1, 2, 1), _act(2, 2, 1), _act(3, 3, 1), _act(4, 1, 2)]
        )
        assert trace.interaction_counts(1) == {2: 2, 3: 1}
        assert trace.interaction_counts(2) == {1: 1}
        assert trace.interaction_counts(9) == {}

    def test_interaction_counts_ignore_self_posts(self):
        trace = ActivityTrace([_act(1, 1, 1), _act(2, 2, 1)])
        assert trace.interaction_counts(1) == {2: 1}

    def test_window(self):
        trace = ActivityTrace([_act(t, 1, 2) for t in (0, 10, 20, 30)])
        windowed = trace.window(10, 30)
        assert [a.timestamp for a in windowed] == [10, 20]

    def test_restricted_to(self):
        trace = ActivityTrace([_act(1, 1, 2), _act(2, 1, 3), _act(3, 3, 2)])
        restricted = trace.restricted_to({1, 2})
        assert len(restricted) == 1
        assert restricted.activities[0].creator == 1


class TestDataset:
    def test_kind_validation(self):
        with pytest.raises(ValueError):
            Dataset("x", "myspace", SocialGraph(), ActivityTrace([]))

    def test_graph_direction_must_match_kind(self):
        with pytest.raises(ValueError):
            Dataset("x", "facebook", FollowerGraph(), ActivityTrace([]))
        with pytest.raises(ValueError):
            Dataset("x", "twitter", SocialGraph(), ActivityTrace([]))

    def test_facebook_candidates_are_friends(self):
        g = SocialGraph()
        g.add_edge(1, 2)
        ds = Dataset("x", "facebook", g, ActivityTrace([]))
        assert ds.replica_candidates(1) == frozenset({2})
        assert ds.degree(1) == 1
        assert ds.num_users == 2

    def test_twitter_candidates_are_followers(self):
        g = FollowerGraph()
        g.add_follow(1, 2)
        ds = Dataset("x", "twitter", g, ActivityTrace([]))
        assert ds.replica_candidates(2) == frozenset({1})
        assert ds.replica_candidates(1) == frozenset()
