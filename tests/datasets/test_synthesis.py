"""Tests for the synthetic trace generators (stream-per-user layout)."""

import math
import random
from collections import Counter

import pytest

from repro.datasets import DiurnalMixture, TraceParams
from repro.datasets.synthesis import (
    STREAM_VERSION,
    _draw_activity_count,
    synthesize_tweet_trace,
    synthesize_wall_trace,
    user_activities,
    user_receivers,
    user_stream,
)
from repro.graph import barabasi_albert, preferential_follower_graph
from repro.seeding import derive_seed
from repro.timeline import DAY_SECONDS


class TestTraceParams:
    def test_defaults_valid(self):
        TraceParams()

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceParams(trace_days=0)
        with pytest.raises(ValueError):
            TraceParams(activities_mean=0)
        with pytest.raises(ValueError):
            TraceParams(partner_zipf_alpha=-1)


class TestDiurnalMixture:
    def test_peak_in_day(self):
        rng = random.Random(0)
        mix = DiurnalMixture()
        for _ in range(200):
            assert 0 <= mix.draw_peak(rng) < DAY_SECONDS

    def test_evening_bias(self):
        rng = random.Random(1)
        mix = DiurnalMixture()
        peaks = [mix.draw_peak(rng) for _ in range(2000)]
        evening = sum(1 for p in peaks if 17 * 3600 <= p <= 23.9 * 3600)
        morning = sum(1 for p in peaks if 5 * 3600 <= p <= 11 * 3600)
        assert evening > morning

    def test_weights_summing_to_almost_one_accepted(self):
        # Short-decimal weights whose binary sum drifts just below 1.0
        # (the historical fall-through bug) must be accepted and
        # renormalised, with the last component reachable at its true
        # share rather than only on float fall-through.
        components = (
            (0.333333, 9 * 3600.0, 3600.0),
            (0.333333, 15 * 3600.0, 3600.0),
            (0.333333, 21 * 3600.0, 3600.0),
        )
        assert sum(w for w, _, _ in components) < 1.0
        mix = DiurnalMixture(components=components)
        assert mix._cumulative[-1] == 1.0
        rng = random.Random(2)
        peaks = [mix.draw_peak(rng) for _ in range(3000)]
        late = sum(1 for p in peaks if 18 * 3600 <= p <= 24 * 3600)
        # The last component holds a third of the mass, not a sliver.
        assert late > 0.2 * len(peaks)

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            DiurnalMixture(components=())
        with pytest.raises(ValueError):
            DiurnalMixture(components=((0.5, 0.0, 1.0), (-0.5, 0.0, 1.0)))
        with pytest.raises(ValueError):
            DiurnalMixture(components=((0.5, 0.0, 1.0), (0.4, 0.0, 1.0)))
        with pytest.raises(ValueError):
            DiurnalMixture(components=((1.0, 0.0, -1.0),))


class TestActivityCount:
    def test_mean_approximately_configured(self):
        rng = random.Random(2)
        params = TraceParams(activities_mean=50.0)
        draws = [_draw_activity_count(params, rng) for _ in range(4000)]
        assert math.isclose(sum(draws) / len(draws), 50.0, rel_tol=0.1)

    def test_minimum_one(self):
        rng = random.Random(3)
        params = TraceParams(activities_mean=1.0, activities_sigma=1.5)
        assert all(_draw_activity_count(params, rng) >= 1 for _ in range(500))


class TestUserStreams:
    def test_stream_is_salted_and_user_specific(self):
        # The synthesis stream must differ from the online-time stream
        # (derive_rng(seed, user)) and between users.
        assert user_stream(0, 1).random() != random.Random(
            derive_seed(0, 1)
        ).random()
        assert user_stream(0, 1).random() != user_stream(0, 2).random()
        assert user_stream(0, 1).random() == user_stream(0, 1).random()

    def test_rejects_non_int_seed(self):
        with pytest.raises(TypeError):
            user_stream(random.Random(0), 1)
        with pytest.raises(TypeError):
            synthesize_wall_trace(
                barabasi_albert(10, 2, random.Random(0)),
                TraceParams(),
                random.Random(0),
            )

    def test_receivers_prefix_of_activities(self):
        params = TraceParams()
        partners = list(range(1, 9))
        receivers = user_receivers(partners, params, seed=5, user=0)
        acts = user_activities(partners, params, seed=5, user=0)
        assert [a.receiver for a in acts] == receivers

    def test_stream_version_pinned(self):
        assert STREAM_VERSION == 2


class TestStreamCompatibility:
    """Pins the v2 stream-per-user output as the canonical dataset.

    The original generator drove one ``random.Random`` sequentially
    across all users; v2 gives each user the independent stream
    ``derive_rng(seed, "synthesis", user)``.  These golden values freeze
    the v2 layout: any change to the draw order, the salt, or the
    derivation must bump ``STREAM_VERSION`` and update this pin.
    """

    def test_golden_activities(self):
        acts = user_activities(
            [1, 2, 3], TraceParams(trace_days=7), seed=0, user=0
        )
        golden = [
            (round(a.timestamp, 6), a.receiver) for a in acts[:3]
        ]
        assert len(acts) == 43
        assert golden == [
            (61605.238773, 3),
            (571882.404926, 3),
            (134468.902693, 1),
        ]

    def test_golden_wall_trace_digest(self):
        graph = barabasi_albert(30, 2, random.Random(7))
        trace = synthesize_wall_trace(graph, TraceParams(), 8)
        digest = sum(
            round(a.timestamp, 3) * 31 + a.creator * 7 + a.receiver
            for a in trace
        )
        assert len(trace) == 1177
        assert round(digest, 3) == 23078828200.199


class TestWallTrace:
    def test_receivers_are_friends(self):
        graph = barabasi_albert(60, 2, random.Random(4))
        trace = synthesize_wall_trace(graph, TraceParams(), 4)
        for act in trace:
            assert graph.has_edge(act.creator, act.receiver)

    def test_timestamps_within_trace_days(self):
        graph = barabasi_albert(40, 2, random.Random(5))
        params = TraceParams(trace_days=7)
        trace = synthesize_wall_trace(graph, params, 5)
        assert trace.end < 7 * DAY_SECONDS

    def test_partner_skew(self):
        graph = barabasi_albert(50, 5, random.Random(6))
        params = TraceParams(activities_mean=200, partner_zipf_alpha=1.5)
        trace = synthesize_wall_trace(graph, params, 6)
        # Pick a user with many received posts; his interaction counts
        # should be skewed (top partner well above the mean count).
        best_user = max(graph.users(), key=lambda u: len(trace.received_by(u)))
        counts = Counter(trace.interaction_counts(best_user))
        top = counts.most_common(1)[0][1]
        mean = sum(counts.values()) / len(counts)
        assert top > 1.5 * mean

    def test_deterministic_under_seed(self):
        graph = barabasi_albert(30, 2, random.Random(7))
        t1 = synthesize_wall_trace(graph, TraceParams(), 8)
        t2 = synthesize_wall_trace(graph, TraceParams(), 8)
        assert t1.activities == t2.activities

    def test_subset_matches_full_trace(self):
        # Stream-per-user: generating only a subset of users yields
        # exactly their slice of the full trace.
        graph = barabasi_albert(40, 2, random.Random(11))
        params = TraceParams()
        full = synthesize_wall_trace(graph, params, 12)
        subset = [5, 17, 23]
        partial = synthesize_wall_trace(graph, params, 12, users=subset)
        for u in subset:
            assert list(partial.created_by(u)) == list(full.created_by(u))


class TestTweetTrace:
    def test_receivers_are_followees(self):
        graph = preferential_follower_graph(60, 3, random.Random(9))
        trace = synthesize_tweet_trace(graph, TraceParams(), 9)
        for act in trace:
            assert graph.has_follow(act.creator, act.receiver)

    def test_received_activity_comes_from_followers(self):
        graph = preferential_follower_graph(60, 3, random.Random(10))
        trace = synthesize_tweet_trace(graph, TraceParams(), 10)
        for user in graph.users():
            for creator in trace.interaction_counts(user):
                assert creator in graph.followers(user)
