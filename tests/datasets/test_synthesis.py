"""Tests for the synthetic trace generators."""

import math
import random
from collections import Counter

import pytest

from repro.datasets import DiurnalMixture, TraceParams
from repro.datasets.synthesis import (
    _draw_activity_count,
    synthesize_tweet_trace,
    synthesize_wall_trace,
)
from repro.graph import barabasi_albert, preferential_follower_graph
from repro.timeline import DAY_SECONDS


class TestTraceParams:
    def test_defaults_valid(self):
        TraceParams()

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceParams(trace_days=0)
        with pytest.raises(ValueError):
            TraceParams(activities_mean=0)
        with pytest.raises(ValueError):
            TraceParams(partner_zipf_alpha=-1)


class TestDiurnalMixture:
    def test_peak_in_day(self):
        rng = random.Random(0)
        mix = DiurnalMixture()
        for _ in range(200):
            assert 0 <= mix.draw_peak(rng) < DAY_SECONDS

    def test_evening_bias(self):
        rng = random.Random(1)
        mix = DiurnalMixture()
        peaks = [mix.draw_peak(rng) for _ in range(2000)]
        evening = sum(1 for p in peaks if 17 * 3600 <= p <= 23.9 * 3600)
        morning = sum(1 for p in peaks if 5 * 3600 <= p <= 11 * 3600)
        assert evening > morning


class TestActivityCount:
    def test_mean_approximately_configured(self):
        rng = random.Random(2)
        params = TraceParams(activities_mean=50.0)
        draws = [_draw_activity_count(params, rng) for _ in range(4000)]
        assert math.isclose(sum(draws) / len(draws), 50.0, rel_tol=0.1)

    def test_minimum_one(self):
        rng = random.Random(3)
        params = TraceParams(activities_mean=1.0, activities_sigma=1.5)
        assert all(_draw_activity_count(params, rng) >= 1 for _ in range(500))


class TestWallTrace:
    def test_receivers_are_friends(self):
        rng = random.Random(4)
        graph = barabasi_albert(60, 2, rng)
        trace = synthesize_wall_trace(graph, TraceParams(), rng)
        for act in trace:
            assert graph.has_edge(act.creator, act.receiver)

    def test_timestamps_within_trace_days(self):
        rng = random.Random(5)
        graph = barabasi_albert(40, 2, rng)
        params = TraceParams(trace_days=7)
        trace = synthesize_wall_trace(graph, params, rng)
        assert trace.end < 7 * DAY_SECONDS

    def test_partner_skew(self):
        rng = random.Random(6)
        graph = barabasi_albert(50, 5, rng)
        params = TraceParams(activities_mean=200, partner_zipf_alpha=1.5)
        trace = synthesize_wall_trace(graph, params, rng)
        # Pick a user with many received posts; his interaction counts
        # should be skewed (top partner well above the mean count).
        best_user = max(graph.users(), key=lambda u: len(trace.received_by(u)))
        counts = Counter(trace.interaction_counts(best_user))
        top = counts.most_common(1)[0][1]
        mean = sum(counts.values()) / len(counts)
        assert top > 1.5 * mean

    def test_deterministic_under_seed(self):
        graph = barabasi_albert(30, 2, random.Random(7))
        t1 = synthesize_wall_trace(graph, TraceParams(), random.Random(8))
        t2 = synthesize_wall_trace(graph, TraceParams(), random.Random(8))
        assert t1.activities == t2.activities


class TestTweetTrace:
    def test_receivers_are_followees(self):
        rng = random.Random(9)
        graph = preferential_follower_graph(60, 3, rng)
        trace = synthesize_tweet_trace(graph, TraceParams(), rng)
        for act in trace:
            assert graph.has_follow(act.creator, act.receiver)

    def test_received_activity_comes_from_followers(self):
        rng = random.Random(10)
        graph = preferential_follower_graph(60, 3, rng)
        trace = synthesize_tweet_trace(graph, TraceParams(), rng)
        for user in graph.users():
            for creator in trace.interaction_counts(user):
                assert creator in graph.followers(user)
