"""Tests for the filtering pipeline, dataset builders, loaders and stats."""

import io

import pytest

from repro.datasets import (
    Activity,
    ActivityTrace,
    Dataset,
    dataset_stats,
    degree_distribution,
    filter_dataset,
    load_facebook_dataset,
    load_tweet_trace,
    load_twitter_dataset,
    synthetic_facebook,
    synthetic_twitter,
)
from repro.datasets.stats import activity_count_distribution
from repro.graph import FollowerGraph, SocialGraph


def _act(t, creator, receiver):
    return Activity(timestamp=t, creator=creator, receiver=receiver)


class TestFilterDataset:
    def test_removes_low_activity_users(self):
        g = SocialGraph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        trace = ActivityTrace(
            [_act(i, 1, 2) for i in range(10)] + [_act(i, 2, 1) for i in range(10, 20)]
        )
        ds = Dataset("t", "facebook", g, trace)
        filtered = filter_dataset(ds, min_activities=10)
        assert 3 not in filtered.graph  # created nothing
        assert 1 in filtered.graph
        assert 2 in filtered.graph

    def test_cascades_to_fixpoint(self):
        # 3's only activities target 4; 4 is under threshold, so dropping 4
        # drops 3's activities below threshold too.
        g = SocialGraph()
        g.add_edge(1, 2)
        g.add_edge(3, 4)
        acts = (
            [_act(i, 1, 2) for i in range(10)]
            + [_act(i, 2, 1) for i in range(10, 20)]
            + [_act(i, 3, 4) for i in range(20, 30)]
        )
        ds = Dataset("t", "facebook", g, ActivityTrace(acts))
        filtered = filter_dataset(ds, min_activities=10)
        assert set(filtered.graph.users()) == {1, 2}
        assert all(a.creator in {1, 2} for a in filtered.trace)

    def test_require_candidates_drops_followerless_users(self):
        g = FollowerGraph()
        g.add_follow(1, 2)  # 2 has follower 1; 1 has none
        acts = [_act(i, 1, 2) for i in range(10)] + [
            _act(i, 2, 1) for i in range(10, 20)
        ]
        ds = Dataset("t", "twitter", g, ActivityTrace(acts))
        filtered = filter_dataset(ds, min_activities=10, require_candidates=True)
        # 1 has no followers -> dropped; then 2's trace empties -> dropped.
        assert filtered.graph.num_users == 0

    def test_zero_threshold_keeps_everyone_with_candidates(self):
        g = SocialGraph()
        g.add_edge(1, 2)
        ds = Dataset("t", "facebook", g, ActivityTrace([]))
        filtered = filter_dataset(ds, min_activities=0)
        assert filtered.graph.num_users == 2

    def test_invalid_threshold(self):
        g = SocialGraph()
        ds = Dataset("t", "facebook", g, ActivityTrace([]))
        with pytest.raises(ValueError):
            filter_dataset(ds, min_activities=-1)


class TestSyntheticBuilders:
    def test_facebook_filtered_users_have_min_activity(self):
        ds = synthetic_facebook(400, seed=3)
        assert ds.kind == "facebook"
        for user in ds.graph.users():
            assert ds.trace.activity_count(user) >= 10

    def test_twitter_filtered_users_have_followers(self):
        ds = synthetic_twitter(400, seed=3)
        assert ds.kind == "twitter"
        for user in ds.graph.users():
            assert ds.trace.activity_count(user) >= 10
            assert ds.graph.followers(user)

    def test_deterministic(self):
        a = synthetic_facebook(200, seed=5)
        b = synthetic_facebook(200, seed=5)
        assert a.trace.activities == b.trace.activities
        assert sorted(a.graph.edges()) == sorted(b.graph.edges())

    def test_different_seeds_differ(self):
        a = synthetic_facebook(200, seed=5)
        b = synthetic_facebook(200, seed=6)
        assert a.trace.activities != b.trace.activities


class TestLoaders:
    def test_load_facebook_dataset(self):
        links = io.StringIO("1 2\n2 3\n")
        wall_lines = [f"2 1 {i}" for i in range(10)] + [
            f"1 2 {i}" for i in range(10, 20)
        ]
        wall = io.StringIO("\n".join(wall_lines))
        ds = load_facebook_dataset(links, wall)
        assert ds.kind == "facebook"
        assert set(ds.graph.users()) == {1, 2}
        # receiver/creator orientation: '2 1 t' = poster 1 on wall of 2.
        assert ds.trace.interaction_counts(2) == {1: 10}

    def test_load_twitter_dataset(self):
        follows = io.StringIO("1 2\n2 1\n")  # mutual follow
        tweet_lines = [f"1 2 {i}" for i in range(10)] + [
            f"2 1 {i}" for i in range(10, 20)
        ]
        tweets = io.StringIO("\n".join(tweet_lines))
        ds = load_twitter_dataset(follows, tweets)
        assert set(ds.graph.users()) == {1, 2}
        assert ds.trace.interaction_counts(2) == {1: 10}

    def test_tweet_trace_rejects_bad_line(self):
        with pytest.raises(ValueError):
            load_tweet_trace(io.StringIO("1 2\n"))


class TestStats:
    def test_dataset_stats_numbers(self):
        g = SocialGraph()
        g.add_edge(1, 2)
        trace = ActivityTrace([_act(0, 1, 2), _act(86400, 2, 1)])
        ds = Dataset("t", "facebook", g, trace)
        stats = dataset_stats(ds)
        assert stats.num_users == 2
        assert stats.num_edges == 1
        assert stats.average_degree == 1.0
        assert stats.num_activities == 2
        assert stats.average_activities_per_user == 1.0
        assert stats.trace_span_days == 1.0
        assert len(stats.as_row()) == 8

    def test_degree_distribution_sorted(self):
        ds = synthetic_facebook(300, seed=1)
        dist = degree_distribution(ds)
        degrees = [d for d, _ in dist]
        assert degrees == sorted(degrees)
        assert sum(n for _, n in dist) == ds.num_users

    def test_activity_count_distribution(self):
        ds = synthetic_facebook(300, seed=1)
        dist = activity_count_distribution(ds)
        assert sum(n for _, n in dist) == ds.num_users
        assert min(c for c, _ in dist) >= 10
