"""Tests for the Bézier smoothing (gnuplot `smooth bezier` equivalent)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import bezier_curve, de_casteljau, smooth_series


class TestDeCasteljau:
    def test_endpoints(self):
        control = [1.0, 5.0, 2.0]
        assert de_casteljau(control, 0.0) == 1.0
        assert de_casteljau(control, 1.0) == 2.0

    def test_linear_case(self):
        assert de_casteljau([0.0, 10.0], 0.25) == pytest.approx(2.5)

    def test_quadratic_midpoint(self):
        # B(0.5) = 0.25*p0 + 0.5*p1 + 0.25*p2
        assert de_casteljau([0.0, 4.0, 8.0], 0.5) == pytest.approx(4.0)

    def test_single_point_constant(self):
        assert de_casteljau([7.0], 0.3) == 7.0

    def test_validation(self):
        with pytest.raises(ValueError):
            de_casteljau([], 0.5)
        with pytest.raises(ValueError):
            de_casteljau([1.0], 1.5)

    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100), min_size=1, max_size=8
        ),
        st.floats(min_value=0, max_value=1),
    )
    def test_convex_hull_property(self, control, t):
        value = de_casteljau(control, t)
        assert min(control) - 1e-9 <= value <= max(control) + 1e-9


class TestBezierCurve:
    def test_interpolates_endpoints(self):
        points = [(0, 0), (1, 5), (2, 1)]
        curve = bezier_curve(points, samples=10)
        assert curve[0] == pytest.approx((0, 0))
        assert curve[-1] == pytest.approx((2, 1))
        assert len(curve) == 10

    def test_monotone_x_for_monotone_controls(self):
        points = [(float(i), float(i * i)) for i in range(6)]
        curve = bezier_curve(points)
        xs = [p[0] for p in curve]
        assert xs == sorted(xs)

    def test_smooths_a_spike(self):
        # A single spike is attenuated by the global curve.
        points = [(0, 0), (1, 0), (2, 10), (3, 0), (4, 0)]
        curve = bezier_curve(points, samples=101)
        peak = max(y for _, y in curve)
        assert 0 < peak < 10

    def test_validation(self):
        with pytest.raises(ValueError):
            bezier_curve([(0, 0)])
        with pytest.raises(ValueError):
            bezier_curve([(0, 0), (1, 1)], samples=1)


class TestSmoothSeries:
    def test_returns_lists(self):
        xs, ys = smooth_series([0, 1, 2], [0, 1, 0], samples=5)
        assert len(xs) == len(ys) == 5
        assert xs[0] == 0 and xs[-1] == 2

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            smooth_series([0, 1], [0])

    def test_preserves_flat_series(self):
        _, ys = smooth_series([0, 1, 2, 3], [4, 4, 4, 4])
        assert all(y == pytest.approx(4) for y in ys)
