"""Tests for summary statistics, bootstrap CIs and ASCII charts."""

import math
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    ascii_chart,
    bootstrap_ci,
    chart_from_table,
    percentile,
    summarize,
)


class TestPercentile:
    def test_median_odd(self):
        assert percentile([1, 2, 3], 50) == 2

    def test_median_even_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_extremes(self):
        data = [5, 1, 9]  # function expects sorted; give sorted
        assert percentile(sorted(data), 0) == 1
        assert percentile(sorted(data), 100) == 9

    def test_single(self):
        assert percentile([7], 34) == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestSummarize:
    def test_basic(self):
        s = summarize([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert s.n == 8
        assert s.mean == pytest.approx(5.0)
        assert s.std == pytest.approx(2.0)
        assert s.minimum == 2.0
        assert s.maximum == 9.0
        assert s.median == pytest.approx(4.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    def test_ordering_invariants(self, values):
        s = summarize(values)
        eps = 1e-6 * max(1.0, abs(s.maximum), abs(s.minimum))
        assert s.minimum - eps <= s.p10 <= s.median + eps
        assert s.median - eps <= s.p90 <= s.maximum + eps
        assert s.minimum - eps <= s.mean <= s.maximum + eps


class TestBootstrapCI:
    def test_contains_true_mean_for_tight_sample(self):
        values = [10.0] * 30
        lo, hi = bootstrap_ci(values, rng=random.Random(1))
        assert lo == hi == 10.0

    def test_interval_ordering_and_coverage(self):
        rng = random.Random(2)
        values = [rng.gauss(5, 1) for _ in range(100)]
        lo, hi = bootstrap_ci(values, n_boot=500, rng=random.Random(3))
        assert lo < hi
        mean = sum(values) / len(values)
        assert lo < mean < hi

    def test_custom_stat(self):
        values = [1.0, 2.0, 3.0, 100.0]
        lo, hi = bootstrap_ci(
            values,
            stat=lambda v: sorted(v)[len(v) // 2],
            n_boot=300,
            rng=random.Random(4),
        )
        assert lo <= hi

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.5)

    def test_deterministic_with_rng(self):
        values = [1.0, 5.0, 3.0, 8.0]
        a = bootstrap_ci(values, n_boot=200, rng=random.Random(7))
        b = bootstrap_ci(values, n_boot=200, rng=random.Random(7))
        assert a == b


class TestAsciiChart:
    def test_renders_glyphs_and_legend(self):
        chart = ascii_chart(
            {"up": [(0, 0), (1, 1), (2, 2)], "down": [(0, 2), (1, 1), (2, 0)]},
            width=20,
            height=8,
            title="trends",
        )
        assert "trends" in chart
        assert "*" in chart and "+" in chart
        assert "* up" in chart and "+ down" in chart

    def test_axis_labels_show_range(self):
        chart = ascii_chart({"s": [(0, 0), (10, 5)]}, width=20, height=6)
        assert "10" in chart
        assert "5" in chart

    def test_skips_non_finite(self):
        chart = ascii_chart(
            {"s": [(0, 1), (1, math.inf), (2, 2)]}, width=10, height=5
        )
        assert chart  # renders without error

    def test_flat_series(self):
        chart = ascii_chart({"s": [(0, 3), (1, 3)]}, width=10, height=5)
        assert "*" in chart

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({})
        with pytest.raises(ValueError):
            ascii_chart({"s": [(0, math.nan)]})


class TestChartFromTable:
    def test_table_to_chart(self):
        chart = chart_from_table(
            ("degree", "maxav", "random"),
            [(0, 0.1, 0.1), (5, 0.8, 0.6), (10, 0.9, 0.9)],
            title="availability",
        )
        assert "availability" in chart
        assert "maxav" in chart
        assert "degree" in chart

    def test_none_cells_skipped(self):
        chart = chart_from_table(
            ("x", "a"),
            [(0, 1.0), (1, None), (2, 3.0)],
        )
        assert "a" in chart

    def test_needs_series_column(self):
        with pytest.raises(ValueError):
            chart_from_table(("x",), [(1,)])
